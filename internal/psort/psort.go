// Package psort is the parallel sort kernel behind every packing order.
//
// The paper's bottom line — "the cost of sorting dominates the cost of the
// packing step" — makes the sort the one phase worth parallelizing. The
// kernel sorts entries by a key precomputed once per entry (a center
// coordinate mapped to order-preserving bits, or a Hilbert index), so the
// hot comparison is two loads and an integer compare instead of the
// closure-plus-interface-dispatch CenterAxis call sort.Slice paid per
// comparison. Work is split across workers as a merge sort: each worker
// sorts a contiguous chunk of (key, index) pairs with slices.SortFunc,
// then chunks are merged pairwise, each merge itself split across workers
// by binary-searching the merge midpoint.
//
// Determinism: ties on the key are broken by the entry's original index,
// which makes the (key, index) order a strict total order. The sorted
// sequence is therefore unique — the kernel's output is byte-for-byte
// identical for every worker count, and equal to a sequential stable sort
// by key. Packed trees built at Workers=1 and Workers=64 are the same
// tree.
package psort

import (
	"math"
	"slices"
	"sync"

	"strtree/internal/node"
)

const (
	// seqMin is the input size below which sorting runs sequentially: the
	// goroutine handoff costs more than it saves.
	seqMin = 4096
	// mergeSeqMin is the merge piece below which a merge stops splitting.
	mergeSeqMin = 2048
)

// pair carries one precomputed key and the index of the entry it belongs
// to. idx doubles as the deterministic tie-break.
type pair[K any] struct {
	key K
	idx int64
}

// Float64Key maps a float64 to a uint64 whose unsigned order equals the
// float order (negatives below positives, -Inf first, +Inf last). The two
// zeros share one key, matching float comparison where -0 == +0; NaNs get
// keys at the extremes, giving them a fixed deterministic position where
// comparison-based sorts leave their order unspecified.
func Float64Key(f float64) uint64 {
	//strlint:ignore floateq collapsing -0 onto +0 is the point: the two zeros must share a key
	if f == 0 {
		return 1 << 63
	}
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// ByCenter permutes entries into ascending order of the center coordinate
// along one axis — the ordering every STR, NX and Y phase uses. Equivalent
// to a stable sort; identical output for every worker count.
func ByCenter(entries []node.Entry, axis, workers int) {
	if len(entries) < 2 {
		return
	}
	keys := make([]uint64, len(entries))
	Chunks(len(entries), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = Float64Key(entries[i].Rect.CenterAxis(axis))
		}
	})
	ByKeys(entries, keys, workers)
}

// ByKeys permutes entries into ascending order of their parallel uint64
// keys, ties broken by original position (a stable sort by key). keys is
// consumed as scratch. Identical output for every worker count.
func ByKeys(entries []node.Entry, keys []uint64, workers int) {
	ByKeysFunc(entries, keys, func(a, b uint64) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}, workers)
}

// ByKeysFunc is ByKeys for arbitrary key types: cmp must be a total
// preorder on K (ties are fine — the kernel breaks them by index). Used by
// the exact Hilbert order, whose key is a grid cell compared lazily.
func ByKeysFunc[K any](entries []node.Entry, keys []K, cmp func(a, b K) int, workers int) {
	n := len(entries)
	if n != len(keys) {
		//strlint:ignore panics documented contract: mismatched key and entry slices are a caller bug, not a data condition
		panic("psort: len(keys) != len(entries)")
	}
	if n < 2 {
		return
	}
	ps := make([]pair[K], n)
	Chunks(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ps[i] = pair[K]{key: keys[i], idx: int64(i)}
		}
	})
	pc := func(a, b pair[K]) int {
		if c := cmp(a.key, b.key); c != 0 {
			return c
		}
		// Unique index tie-break: the total order whose sorted sequence is
		// the stable sort by key, independent of chunking and workers.
		switch {
		case a.idx < b.idx:
			return -1
		case a.idx > b.idx:
			return 1
		default:
			return 0
		}
	}
	sorted := sortPairs(ps, pc, workers)
	tmp := make([]node.Entry, n)
	Chunks(n, workers, func(lo, hi int) {
		copy(tmp[lo:hi], entries[lo:hi])
	})
	Chunks(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			entries[i] = tmp[sorted[i].idx]
		}
	})
}

// Chunks invokes f over consecutive [lo, hi) ranges covering [0, n),
// concurrently when workers > 1 and n is worth splitting. Exported for
// callers that precompute keys (e.g. the Hilbert packers).
func Chunks(n, workers int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < seqMin {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// sortPairs sorts ps by pc (a strict total order thanks to the index
// tie-break) and returns the sorted slice, which is either ps itself or
// scratch storage of the same length.
func sortPairs[K any](ps []pair[K], pc func(a, b pair[K]) int, workers int) []pair[K] {
	n := len(ps)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < seqMin {
		slices.SortFunc(ps, pc)
		return ps
	}

	// Chunk sorts: workers contiguous ranges, each sorted independently.
	offs := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		offs[w] = n * w / workers
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := offs[w], offs[w+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			slices.SortFunc(ps[lo:hi], pc)
		}(lo, hi)
	}
	wg.Wait()

	// Pairwise merge rounds, runs merged left to right so the result is
	// the unique sorted order whatever the chunk count was.
	scratch := make([]pair[K], n)
	src, dst := ps, scratch
	for len(offs) > 2 {
		next := make([]int, 0, len(offs)/2+2)
		merges := (len(offs) - 1) / 2
		per := workers / merges
		if per < 1 {
			per = 1
		}
		var mw sync.WaitGroup
		i := 0
		for ; i+2 < len(offs); i += 2 {
			a, b, c := offs[i], offs[i+1], offs[i+2]
			next = append(next, a)
			mw.Add(1)
			go func(a, b, c int) {
				defer mw.Done()
				mergeInto(dst[a:c], src[a:b], src[b:c], pc, per)
			}(a, b, c)
		}
		if i+1 < len(offs) {
			// Odd run out: carry it to the next round unmerged.
			a, b := offs[i], offs[i+1]
			next = append(next, a)
			mw.Add(1)
			go func(a, b int) {
				defer mw.Done()
				copy(dst[a:b], src[a:b])
			}(a, b)
		}
		next = append(next, n)
		mw.Wait()
		offs = next
		src, dst = dst, src
	}
	return src
}

// mergeInto merges sorted runs a and b into dst (len(dst) = len(a) +
// len(b)), splitting the work into up to pieces parallel parts by binary
// searching the merge midpoint.
func mergeInto[K any](dst, a, b []pair[K], pc func(x, y pair[K]) int, pieces int) {
	if pieces > 1 && len(dst) > mergeSeqMin {
		half := len(dst) / 2
		i := mergeSplit(a, b, half, pc)
		j := half - i
		var wg sync.WaitGroup
		wg.Add(1)
		left := pieces / 2
		if left < 1 {
			left = 1
		}
		go func() {
			defer wg.Done()
			mergeInto(dst[:half], a[:i], b[:j], pc, left)
		}()
		mergeInto(dst[half:], a[i:], b[j:], pc, pieces-left)
		wg.Wait()
		return
	}
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if pc(a[i], b[j]) <= 0 {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// mergeSplit returns i such that taking a[:i] and b[:k-i] yields the k
// smallest elements of the merged sequence — the classic two-sorted-arrays
// selection, well defined because pc is a strict total order.
func mergeSplit[K any](a, b []pair[K], k int, pc func(x, y pair[K]) int) int {
	lo, hi := k-len(b), len(a)
	if lo < 0 {
		lo = 0
	}
	if hi > k {
		hi = k
	}
	for lo < hi {
		i := int(uint(lo+hi) >> 1)
		if pc(a[i], b[k-i-1]) < 0 {
			lo = i + 1
		} else {
			hi = i
		}
	}
	return lo
}
