// Package buffer implements the LRU buffer manager of the paper's
// experimental methodology (Section 3). All R-tree page requests go through
// a Pool; a request that misses the pool is a disk access, the paper's
// primary comparison metric. The pool writes evicted dirty pages straight
// back to the pager, mirroring the paper's raw-partition setup in which an
// evicted node "is immediately written to disk and not false-buffered by
// the operating system's virtual memory manager".
//
// The paper uses plain LRU for all nodes regardless of level. It discusses
// , and cites [8] to reject, pinning the root and the first few levels; the
// Pool supports such pinning anyway (SetResident) so the repository can
// reproduce that ablation.
package buffer

import (
	"errors"
	"fmt"
	"sync"

	"strtree/internal/storage"
)

// ErrPoolExhausted is returned by Fetch when every frame is pinned and no
// page can be evicted to make room.
var ErrPoolExhausted = errors.New("buffer: all frames pinned")

// Write-pin protocol violations. The write pin is an assertion layer, not a
// lock: mutation exclusivity is the caller's job (the tree is single-writer;
// the serving layer serializes writers against readers). These errors are
// how a violated assumption surfaces as a diagnosable failure instead of a
// silently half-patched page.
var (
	// ErrReadPinned is returned by FetchMut when the page already carries
	// read pins: a concurrent reader could observe the page mid-patch.
	ErrReadPinned = errors.New("buffer: write pin on a read-pinned page")
	// ErrWritePinned is returned by Fetch and FetchMut when the page is
	// write-pinned: its bytes are being patched and must not be observed.
	ErrWritePinned = errors.New("buffer: page is write-pinned")
	// ErrNotWritePinned is returned by ReleaseMut for a frame that does not
	// hold a write pin (mismatched Fetch/ReleaseMut pairing).
	ErrNotWritePinned = errors.New("buffer: release of a frame that is not write-pinned")
)

// Stats are the pool's access counters. DiskReads is the paper's "number of
// disk accesses" metric; LogicalReads-DiskReads is the number of buffer
// hits. Pinned is not a counter but a gauge sampled when the snapshot is
// taken: frames currently pinned by in-flight readers. The serving layer's
// admin endpoint exposes it per shard to make pin leaks and per-shard pin
// pressure visible at runtime.
type Stats struct {
	LogicalReads int64 // Fetch calls
	DiskReads    int64 // Fetch misses that went to the pager
	DiskWrites   int64 // dirty evictions + flushes written to the pager
	Evictions    int64 // frames evicted to make room
	Pinned       int64 // frames pinned right now (gauge, not a counter)
}

// Policy selects the pool's replacement algorithm.
type Policy uint8

const (
	// LRU evicts the least recently used page — the paper's policy.
	LRU Policy = iota
	// Clock is the second-chance approximation of LRU common in real
	// buffer managers; provided for the replacement-policy ablation.
	Clock
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case Clock:
		return "clock"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Frame is a buffered page. The frame's bytes are owned by the pool; a
// caller may read and write Data between Fetch and Release but must not
// retain it afterwards. This pin scope is the lifetime contract of the
// zero-copy read path: a node.View constructed over Data aliases these
// bytes and must die before the Release — never stored, never returned
// upward — because after the unpin the frame can be evicted and its
// backing array handed to a different page.
type Frame struct {
	id   storage.PageID
	data []byte
	pins int
	// writePin marks the single pin as exclusive: the holder is patching
	// Data in place and no reader may pin the frame until ReleaseMut.
	writePin bool
	dirty    bool
	// resident frames are never evicted (pinned-levels ablation).
	resident   bool
	prev, next *Frame // LRU list links, guarded by the pool mutex
	ref        bool   // Clock reference bit
	slot       int    // Clock frame index
}

// ID returns the page the frame holds.
func (f *Frame) ID() storage.PageID { return f.id }

// Data returns the page bytes. Valid only while the frame is pinned.
func (f *Frame) Data() []byte { return f.data }

// MarkDirty records that the caller modified Data, so the page must reach
// the pager before eviction.
func (f *Frame) MarkDirty() { f.dirty = true }

// Pool is a fixed-capacity LRU cache of pages over a storage.Pager. It is
// safe for concurrent use. The zero value is not usable; call NewPool.
type Pool struct {
	mu       sync.Mutex
	pager    storage.Pager
	capacity int
	policy   Policy
	frames   map[storage.PageID]*Frame // guarded by mu
	// guarded by mu. Intrusive LRU list with a sentinel: head.next is most
	// recently used, head.prev is least recently used. Maintained only
	// under LRU.
	head Frame
	// guarded by mu. Clock state: fixed frame slots and the sweep hand.
	// Maintained only under Clock.
	clock []*Frame
	hand  int   // guarded by mu
	stats Stats // guarded by mu
	// guarded by mu. tracer, when set, observes every Fetch (page id and
	// whether it hit).
	tracer func(id storage.PageID, hit bool)
}

// SetTracer installs an observer called on every Fetch with the page id
// and whether the request hit the pool. Used to record access traces for
// offline replacement-policy simulation (package trace). Pass nil to
// remove. The callback runs under the pool mutex: keep it trivial.
func (p *Pool) SetTracer(fn func(id storage.PageID, hit bool)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tracer = fn
}

// NewPool creates an LRU pool with room for capacity pages. Capacity must
// be at least 1; the paper's experiments range from 10 to 500 pages.
func NewPool(pager storage.Pager, capacity int) *Pool {
	return NewPoolWithPolicy(pager, capacity, LRU)
}

// NewPoolWithPolicy creates a pool using the given replacement policy.
func NewPoolWithPolicy(pager storage.Pager, capacity int, policy Policy) *Pool {
	if capacity < 1 {
		//strlint:ignore panics documented contract: a pool with no frames is a programming error
		panic(fmt.Sprintf("buffer: capacity %d < 1", capacity))
	}
	p := &Pool{
		pager:    pager,
		capacity: capacity,
		policy:   policy,
		frames:   make(map[storage.PageID]*Frame, capacity),
	}
	p.head.next = &p.head
	p.head.prev = &p.head
	return p
}

// Policy returns the pool's replacement policy.
func (p *Pool) Policy() Policy { return p.policy }

// Capacity returns the pool size in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Pager returns the underlying pager.
func (p *Pool) Pager() storage.Pager { return p.pager }

// Fetch pins the page in the pool, reading it from the pager on a miss, and
// returns its frame. Every Fetch must be paired with a Release.
func (p *Pool) Fetch(id storage.PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.LogicalReads++
	if f, ok := p.frames[id]; ok {
		if f.writePin {
			return nil, fmt.Errorf("%w: page %d", ErrWritePinned, id)
		}
		f.pins++
		p.touchLocked(f)
		if p.tracer != nil {
			p.tracer(id, true)
		}
		return f, nil
	}
	if p.tracer != nil {
		p.tracer(id, false)
	}
	f, err := p.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	if err := p.pager.ReadPage(id, f.data); err != nil {
		p.freeFrameLocked(f)
		return nil, err
	}
	p.stats.DiskReads++
	f.id = id
	f.pins = 1
	f.writePin = false
	f.dirty = false
	f.resident = false
	p.frames[id] = f
	p.linkLocked(f)
	return f, nil
}

// FetchMut pins the page exclusively for in-place mutation, reading it from
// the pager on a miss. The write pin asserts the single-writer contract the
// mutation fast path relies on: if the frame already carries any pin — a
// reader's, or another write pin — FetchMut fails with ErrReadPinned or
// ErrWritePinned instead of letting the caller patch bytes a concurrent
// traversal may be decoding. While the write pin is held, Fetch on the same
// page fails with ErrWritePinned. Every FetchMut must be paired with a
// ReleaseMut.
func (p *Pool) FetchMut(id storage.PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.LogicalReads++
	if f, ok := p.frames[id]; ok {
		if f.writePin {
			return nil, fmt.Errorf("%w: page %d", ErrWritePinned, id)
		}
		if f.pins > 0 {
			return nil, fmt.Errorf("%w: page %d has %d read pins", ErrReadPinned, id, f.pins)
		}
		f.pins = 1
		f.writePin = true
		p.touchLocked(f)
		if p.tracer != nil {
			p.tracer(id, true)
		}
		return f, nil
	}
	if p.tracer != nil {
		p.tracer(id, false)
	}
	f, err := p.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	if err := p.pager.ReadPage(id, f.data); err != nil {
		p.freeFrameLocked(f)
		return nil, err
	}
	p.stats.DiskReads++
	f.id = id
	f.pins = 1
	f.writePin = true
	f.dirty = false
	f.resident = false
	p.frames[id] = f
	p.linkLocked(f)
	return f, nil
}

// ReleaseMut drops a write pin obtained from FetchMut, marking the frame
// dirty (the pin existed to patch its bytes; an aborted patch that changed
// nothing writes back an identical page, which costs a write but never
// correctness). It returns ErrNotWritePinned if the frame does not hold a
// write pin — a mismatched Fetch/ReleaseMut pairing. The error is the
// caller's signal that the pin protocol was violated mid-mutation and the
// page's consistency is in question; dropping it is a bug (the strlint
// droppederr check covers this package's callers).
func (p *Pool) ReleaseMut(f *Frame) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !f.writePin || f.pins != 1 {
		return fmt.Errorf("%w: page %d (pins=%d)", ErrNotWritePinned, f.id, f.pins)
	}
	f.writePin = false
	f.dirty = true
	f.pins = 0
	return nil
}

// Create pins a brand-new page: it allocates a page in the pager and a
// zeroed frame for it without performing a disk read (the page contents are
// about to be written). The returned frame is dirty.
func (p *Pool) Create() (*Frame, error) {
	id, err := p.pager.Alloc()
	if err != nil {
		return nil, err
	}
	return p.adopt(id)
}

// adopt pins a zeroed dirty frame for page id, which the caller just
// allocated from the pager. It is Create minus the allocation, so a
// Sharded pool can allocate centrally and hand the page to its owning
// shard.
func (p *Pool) adopt(id storage.PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	for i := range f.data {
		f.data[i] = 0
	}
	f.id = id
	f.pins = 1
	f.writePin = false
	f.dirty = true
	f.resident = false
	p.frames[id] = f
	p.linkLocked(f)
	return f, nil
}

// Release unpins a frame obtained from Fetch or Create. Releasing an
// unpinned frame panics: it indicates a double-release bug in the caller.
func (p *Pool) Release(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		//strlint:ignore panics documented contract: releasing an unpinned frame is a double-release bug in the caller
		panic(fmt.Sprintf("buffer: release of unpinned page %d", f.id))
	}
	if f.writePin {
		//strlint:ignore panics documented contract: a write pin must go through ReleaseMut so its protocol error is observable
		panic(fmt.Sprintf("buffer: Release of write-pinned page %d (use ReleaseMut)", f.id))
	}
	f.pins--
}

// SetResident loads the given pages (counting any misses as disk reads) and
// marks them permanently resident: they are never evicted. This implements
// the pin-the-top-levels policy the paper discusses in Section 3. The
// resident set must be smaller than the pool capacity.
func (p *Pool) SetResident(ids []storage.PageID) error {
	if len(ids) >= p.capacity {
		return fmt.Errorf("buffer: resident set %d >= capacity %d", len(ids), p.capacity)
	}
	for _, id := range ids {
		f, err := p.Fetch(id)
		if err != nil {
			return err
		}
		p.mu.Lock()
		f.resident = true
		f.pins--
		p.mu.Unlock()
	}
	return nil
}

// FlushAll writes every dirty frame to the pager. Frames stay cached.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if !f.dirty {
			continue
		}
		if err := p.pager.WritePage(f.id, f.data); err != nil {
			return err
		}
		f.dirty = false
		p.stats.DiskWrites++
	}
	return nil
}

// Invalidate drops every frame, writing back dirty ones first. Used between
// experiment phases to cold-start the buffer.
func (p *Pool) Invalidate() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, f := range p.frames {
		if f.pins > 0 {
			return fmt.Errorf("buffer: invalidate with page %d pinned", id)
		}
		if f.dirty {
			if err := p.pager.WritePage(f.id, f.data); err != nil {
				return err
			}
			p.stats.DiskWrites++
		}
		if p.policy == LRU {
			p.unlinkLocked(f)
		}
		delete(p.frames, id)
	}
	if p.policy == Clock {
		p.clock = p.clock[:0]
		p.hand = 0
	}
	return nil
}

// Stats returns a snapshot of the counters, with Pinned sampled from the
// frame table at call time.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	for _, f := range p.frames {
		if f.pins > 0 {
			s.Pinned++
		}
	}
	return s
}

// ResetStats zeroes the counters. The experiments build the tree, reset,
// then measure queries only.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Resident returns how many frames are currently cached (for tests).
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// allocFrameLocked returns a frame not in the table, evicting per the
// pool's policy if it is full.
func (p *Pool) allocFrameLocked() (*Frame, error) {
	if p.policy == Clock {
		// Reuse a slot orphaned by a failed read before growing the ring
		// or evicting: ring slots, not the frame table, bound Clock
		// capacity.
		for _, f := range p.clock {
			if f.id == storage.NilPage && f.pins == 0 {
				return f, nil
			}
		}
		if len(p.clock) < p.capacity {
			return &Frame{data: make([]byte, p.pager.PageSize()), slot: -1}, nil
		}
		return p.evictClockLocked()
	}
	if len(p.frames) < p.capacity {
		return &Frame{data: make([]byte, p.pager.PageSize()), slot: -1}, nil
	}
	// LRU: walk from least recently used towards the front looking for an
	// unpinned, non-resident victim.
	for f := p.head.prev; f != &p.head; f = f.prev {
		if f.pins > 0 || f.resident {
			continue
		}
		if err := p.writeBackLocked(f); err != nil {
			return nil, err
		}
		p.unlinkLocked(f)
		delete(p.frames, f.id)
		p.stats.Evictions++
		return f, nil
	}
	return nil, ErrPoolExhausted
}

// evictClockLocked sweeps the clock hand, giving referenced frames a
// second chance, and evicts the first unreferenced unpinned frame. Two
// full sweeps with no victim means everything is pinned or resident.
func (p *Pool) evictClockLocked() (*Frame, error) {
	for i := 0; i <= 2*len(p.clock); i++ {
		f := p.clock[p.hand]
		p.hand = (p.hand + 1) % len(p.clock)
		if f.pins > 0 || f.resident {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if err := p.writeBackLocked(f); err != nil {
			return nil, err
		}
		delete(p.frames, f.id)
		p.stats.Evictions++
		return f, nil
	}
	return nil, ErrPoolExhausted
}

// writeBackLocked flushes a dirty victim before eviction.
func (p *Pool) writeBackLocked(f *Frame) error {
	if !f.dirty {
		return nil
	}
	if err := p.pager.WritePage(f.id, f.data); err != nil {
		return err
	}
	f.dirty = false
	p.stats.DiskWrites++
	return nil
}

// touch records a hit per the policy.
func (p *Pool) touchLocked(f *Frame) {
	if p.policy == Clock {
		f.ref = true
		return
	}
	p.moveToFrontLocked(f)
}

// link publishes a frame that just received a page.
func (p *Pool) linkLocked(f *Frame) {
	if p.policy == Clock {
		f.ref = true
		if f.slot < 0 {
			f.slot = len(p.clock)
			p.clock = append(p.clock, f)
		}
		return
	}
	p.pushFrontLocked(f)
}

// freeFrameLocked discards a frame allocated by allocFrameLocked that was
// never published (e.g. the pager read failed). A Clock-evicted frame
// stays in the ring, so its stale id must be neutralized: otherwise a
// later sweep of this slot would delete the mapping of whichever frame
// now legitimately holds that page.
func (p *Pool) freeFrameLocked(f *Frame) {
	f.id = storage.NilPage
	f.ref = false
	f.dirty = false
}

func (p *Pool) pushFrontLocked(f *Frame) {
	f.next = p.head.next
	f.prev = &p.head
	p.head.next.prev = f
	p.head.next = f
}

func (p *Pool) unlinkLocked(f *Frame) {
	f.prev.next = f.next
	f.next.prev = f.prev
	f.prev = nil
	f.next = nil
}

func (p *Pool) moveToFrontLocked(f *Frame) {
	p.unlinkLocked(f)
	p.pushFrontLocked(f)
}
