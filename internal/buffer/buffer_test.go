package buffer

import (
	"errors"
	"math/rand"
	"testing"

	"strtree/internal/storage"
)

// newPoolN returns a pool of the given capacity over a fresh MemPager with
// n pre-allocated pages, page i filled with byte(i).
func newPoolN(t *testing.T, capacity, n int) (*Pool, *storage.MemPager) {
	t.Helper()
	pg := storage.NewMemPager(64)
	buf := make([]byte, 64)
	for i := 0; i < n; i++ {
		id, err := pg.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			buf[j] = byte(i)
		}
		if err := pg.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return NewPool(pg, capacity), pg
}

func TestFetchHitAndMiss(t *testing.T) {
	p, _ := newPoolN(t, 4, 8)
	f, err := p.Fetch(3)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() != 3 || f.Data()[0] != 3 {
		t.Fatalf("frame id=%d data[0]=%d", f.ID(), f.Data()[0])
	}
	p.Release(f)
	// Second fetch is a hit.
	f2, err := p.Fetch(3)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f2)
	s := p.Stats()
	if s.LogicalReads != 2 || s.DiskReads != 1 {
		t.Fatalf("stats = %+v, want 2 logical / 1 disk", s)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	p, _ := newPoolN(t, 3, 10)
	touch := func(id storage.PageID) {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatalf("fetch %d: %v", id, err)
		}
		p.Release(f)
	}
	touch(0)
	touch(1)
	touch(2) // pool: LRU 0,1,2 MRU
	touch(0) // pool: LRU 1,2,0 MRU
	touch(3) // evicts 1
	p.ResetStats()
	touch(2)
	touch(0)
	touch(3)
	if s := p.Stats(); s.DiskReads != 0 {
		t.Fatalf("pages 2,0,3 should all be resident, got %d disk reads", s.DiskReads)
	}
	touch(1)
	if s := p.Stats(); s.DiskReads != 1 {
		t.Fatalf("page 1 should have been evicted, stats %+v", p.Stats())
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	p, pg := newPoolN(t, 1, 3)
	f, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 0xEE
	f.MarkDirty()
	p.Release(f)
	// Fetching another page evicts page 0, which must be written back.
	f2, err := p.Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f2)
	got := make([]byte, 64)
	if err := pg.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xEE {
		t.Fatal("dirty page lost on eviction")
	}
	if s := p.Stats(); s.DiskWrites != 1 || s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCleanEvictionDoesNotWrite(t *testing.T) {
	p, pg := newPoolN(t, 1, 3)
	before := pg.Stats().Writes
	for id := storage.PageID(0); id < 3; id++ {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Release(f)
	}
	if pg.Stats().Writes != before {
		t.Fatal("clean evictions caused pager writes")
	}
}

func TestPinnedFramesNotEvicted(t *testing.T) {
	p, _ := newPoolN(t, 2, 5)
	f0, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := p.Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	// Pool full, both pinned: next fetch must fail.
	if _, err := p.Fetch(2); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("fetch with all pinned: %v", err)
	}
	p.Release(f1)
	// Now page 1 is evictable.
	f2, err := p.Fetch(2)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f2)
	p.Release(f0)
	// Page 0 stayed resident throughout.
	p.ResetStats()
	f, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f)
	if p.Stats().DiskReads != 0 {
		t.Fatal("pinned page was evicted")
	}
}

func TestCreate(t *testing.T) {
	p, pg := newPoolN(t, 4, 0)
	f, err := p.Create()
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() != 0 {
		t.Fatalf("created page id = %d", f.ID())
	}
	copy(f.Data(), []byte("hello"))
	p.Release(f)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if err := pg.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:5]) != "hello" {
		t.Fatal("created page contents lost")
	}
	// Create performs no disk read.
	if s := p.Stats(); s.DiskReads != 0 {
		t.Fatalf("Create incurred %d disk reads", s.DiskReads)
	}
}

func TestSetResident(t *testing.T) {
	p, _ := newPoolN(t, 3, 6)
	if err := p.SetResident([]storage.PageID{0, 1}); err != nil {
		t.Fatal(err)
	}
	// Hammer other pages through the one remaining frame.
	for i := 0; i < 10; i++ {
		f, err := p.Fetch(storage.PageID(2 + i%4))
		if err != nil {
			t.Fatal(err)
		}
		p.Release(f)
	}
	p.ResetStats()
	for _, id := range []storage.PageID{0, 1} {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Release(f)
	}
	if p.Stats().DiskReads != 0 {
		t.Fatal("resident pages were evicted")
	}
	// Resident set must be smaller than capacity.
	if err := p.SetResident([]storage.PageID{0, 1, 2}); err == nil {
		t.Fatal("oversized resident set accepted")
	}
}

func TestInvalidate(t *testing.T) {
	p, _ := newPoolN(t, 4, 4)
	for id := storage.PageID(0); id < 4; id++ {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if id == 2 {
			f.MarkDirty()
		}
		p.Release(f)
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
	if err := p.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Fatalf("Len after invalidate = %d", p.Len())
	}
	if s := p.Stats(); s.DiskWrites != 1 {
		t.Fatalf("dirty page not written on invalidate: %+v", s)
	}
	// Invalidate with a pinned page fails.
	f, _ := p.Fetch(0)
	if err := p.Invalidate(); err == nil {
		t.Fatal("invalidate with pinned page succeeded")
	}
	p.Release(f)
}

func TestReleaseUnpinnedPanics(t *testing.T) {
	p, _ := newPoolN(t, 2, 2)
	f, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p.Release(f)
}

func TestAccessors(t *testing.T) {
	pg := storage.NewMemPager(64)
	p := NewPool(pg, 7)
	if p.Capacity() != 7 {
		t.Fatalf("Capacity = %d", p.Capacity())
	}
	if p.Pager() != pg {
		t.Fatal("Pager accessor wrong")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) did not panic")
		}
	}()
	NewPool(storage.NewMemPager(64), 0)
}

// TestLRUMatchesReferenceModel drives the pool and an independent
// reference LRU with the same random trace and checks the miss counts
// agree exactly. This is the invariant the whole evaluation rests on.
func TestLRUMatchesReferenceModel(t *testing.T) {
	const (
		pages    = 40
		capacity = 7
		ops      = 5000
	)
	p, _ := newPoolN(t, capacity, pages)
	rng := rand.New(rand.NewSource(123))

	// Reference: slice ordered MRU-first.
	var ref []storage.PageID
	refMisses := 0
	access := func(id storage.PageID) {
		for i, v := range ref {
			if v == id {
				ref = append(ref[:i], ref[i+1:]...)
				ref = append([]storage.PageID{id}, ref...)
				return
			}
		}
		refMisses++
		ref = append([]storage.PageID{id}, ref...)
		if len(ref) > capacity {
			ref = ref[:capacity]
		}
	}

	for i := 0; i < ops; i++ {
		// Zipf-ish skew: prefer low page numbers.
		id := storage.PageID(rng.Intn(pages))
		if rng.Intn(2) == 0 {
			id = storage.PageID(rng.Intn(pages / 4))
		}
		access(id)
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Release(f)
	}
	if got := p.Stats().DiskReads; got != int64(refMisses) {
		t.Fatalf("pool misses = %d, reference LRU misses = %d", got, refMisses)
	}
}

func BenchmarkFetchHit(b *testing.B) {
	pg := storage.NewMemPager(4096)
	id, _ := pg.Alloc()
	p := NewPool(pg, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := p.Fetch(id)
		if err != nil {
			b.Fatal(err)
		}
		p.Release(f)
	}
}

func BenchmarkFetchMissEvict(b *testing.B) {
	pg := storage.NewMemPager(4096)
	for i := 0; i < 64; i++ {
		if _, err := pg.Alloc(); err != nil {
			b.Fatal(err)
		}
	}
	p := NewPool(pg, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := p.Fetch(storage.PageID(i % 64))
		if err != nil {
			b.Fatal(err)
		}
		p.Release(f)
	}
}
