package buffer

import (
	"errors"
	"testing"

	"strtree/internal/storage"
)

// newWritePinPool sets up a pool over a mem pager with n pre-allocated pages.
func newWritePinPool(t *testing.T, capacity, pages int) (*Pool, []storage.PageID) {
	t.Helper()
	pager := storage.NewMemPager(128)
	p := NewPool(pager, capacity)
	ids := make([]storage.PageID, pages)
	for i := range ids {
		f, err := p.Create()
		if err != nil {
			t.Fatalf("create page %d: %v", i, err)
		}
		ids[i] = f.ID()
		p.Release(f)
	}
	if err := p.Invalidate(); err != nil {
		t.Fatalf("invalidate: %v", err)
	}
	return p, ids
}

func TestWritePinExclusivity(t *testing.T) {
	p, ids := newWritePinPool(t, 4, 2)

	// A write pin on a read-pinned page must fail.
	rf, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.FetchMut(ids[0]); !errors.Is(err, ErrReadPinned) {
		t.Fatalf("FetchMut on read-pinned page: got %v, want ErrReadPinned", err)
	}
	p.Release(rf)

	// With the read pin gone the write pin succeeds, and while it is held
	// both Fetch and a second FetchMut must fail.
	wf, err := p.FetchMut(ids[0])
	if err != nil {
		t.Fatalf("FetchMut after release: %v", err)
	}
	if _, err := p.Fetch(ids[0]); !errors.Is(err, ErrWritePinned) {
		t.Fatalf("Fetch on write-pinned page: got %v, want ErrWritePinned", err)
	}
	if _, err := p.FetchMut(ids[0]); !errors.Is(err, ErrWritePinned) {
		t.Fatalf("second FetchMut: got %v, want ErrWritePinned", err)
	}
	// Other pages stay fetchable.
	of, err := p.Fetch(ids[1])
	if err != nil {
		t.Fatalf("Fetch of unrelated page during write pin: %v", err)
	}
	p.Release(of)

	wf.Data()[0] = 0xAB
	if err := p.ReleaseMut(wf); err != nil {
		t.Fatalf("ReleaseMut: %v", err)
	}

	// The write-released frame is dirty: flushing persists the patch.
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := p.Pager().ReadPage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Fatalf("patched byte not flushed: got %#x", buf[0])
	}
}

func TestReleaseMutProtocolErrors(t *testing.T) {
	p, ids := newWritePinPool(t, 4, 1)

	// ReleaseMut of a read pin is a pairing bug.
	rf, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReleaseMut(rf); !errors.Is(err, ErrNotWritePinned) {
		t.Fatalf("ReleaseMut of read pin: got %v, want ErrNotWritePinned", err)
	}
	p.Release(rf)

	// Double ReleaseMut: the second call must fail, not underflow pins.
	wf, err := p.FetchMut(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReleaseMut(wf); err != nil {
		t.Fatal(err)
	}
	if err := p.ReleaseMut(wf); !errors.Is(err, ErrNotWritePinned) {
		t.Fatalf("double ReleaseMut: got %v, want ErrNotWritePinned", err)
	}
}

func TestReleaseOfWritePinPanics(t *testing.T) {
	p, ids := newWritePinPool(t, 4, 1)
	wf, err := p.FetchMut(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Release of a write-pinned frame did not panic")
			}
		}()
		p.Release(wf)
	}()
	if err := p.ReleaseMut(wf); err != nil {
		t.Fatalf("ReleaseMut after recovered panic: %v", err)
	}
}

// TestWritePinMiss covers the FetchMut miss path: the page is read from the
// pager, write-pinned immediately, and the pin blocks eviction.
func TestWritePinMiss(t *testing.T) {
	p, ids := newWritePinPool(t, 1, 2)
	wf, err := p.FetchMut(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 1 and the only frame write-pinned: another fetch cannot
	// evict it.
	if _, err := p.Fetch(ids[1]); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("Fetch with the sole frame write-pinned: got %v, want ErrPoolExhausted", err)
	}
	if err := p.ReleaseMut(wf); err != nil {
		t.Fatal(err)
	}
	f, err := p.Fetch(ids[1])
	if err != nil {
		t.Fatalf("Fetch after ReleaseMut: %v", err)
	}
	p.Release(f)
	s := p.Stats()
	if s.DiskReads != 2 {
		t.Fatalf("DiskReads = %d, want 2 (one per miss)", s.DiskReads)
	}
}

// TestShardedWritePin proves the sharded manager routes write pins to the
// owning shard with the same protocol.
func TestShardedWritePin(t *testing.T) {
	pager := storage.NewMemPager(128)
	s, err := NewSharded(pager, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Create()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	s.Release(f)

	wf, err := s.FetchMut(id)
	if err != nil {
		t.Fatalf("sharded FetchMut: %v", err)
	}
	if _, err := s.Fetch(id); !errors.Is(err, ErrWritePinned) {
		t.Fatalf("sharded Fetch during write pin: got %v, want ErrWritePinned", err)
	}
	wf.Data()[1] = 0x5A
	if err := s.ReleaseMut(wf); err != nil {
		t.Fatalf("sharded ReleaseMut: %v", err)
	}
	rf, err := s.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Data()[1] != 0x5A {
		t.Fatalf("patched byte lost across sharded write pin: %#x", rf.Data()[1])
	}
	s.Release(rf)
}
