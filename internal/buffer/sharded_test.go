package buffer

import (
	"math/rand"
	"sync"
	"testing"

	"strtree/internal/storage"
)

// newShardedN returns a sharded pool over a fresh MemPager with n
// pre-allocated pages, page i filled with byte(i).
func newShardedN(t *testing.T, capacity, shards, n int) (*Sharded, *storage.MemPager) {
	t.Helper()
	pg := storage.NewMemPager(64)
	buf := make([]byte, 64)
	for i := 0; i < n; i++ {
		id, err := pg.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			buf[j] = byte(i)
		}
		if err := pg.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSharded(pg, capacity, shards)
	if err != nil {
		t.Fatal(err)
	}
	return s, pg
}

// randTrace returns ops page ids over [0, pages) with Zipf-ish skew, the
// same shape the Pool reference-model test uses.
func randTrace(pages, ops int, seed int64) []storage.PageID {
	rng := rand.New(rand.NewSource(seed))
	trace := make([]storage.PageID, ops)
	for i := range trace {
		id := storage.PageID(rng.Intn(pages))
		if rng.Intn(2) == 0 {
			id = storage.PageID(rng.Intn(pages/4 + 1))
		}
		trace[i] = id
	}
	return trace
}

func replay(t *testing.T, m Manager, trace []storage.PageID) {
	t.Helper()
	for _, id := range trace {
		f, err := m.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		m.Release(f)
	}
}

// TestShardedValidation pins the constructor contract: power-of-two shard
// counts only, and at least one page per shard.
func TestShardedValidation(t *testing.T) {
	pg := storage.NewMemPager(64)
	for _, bad := range []struct{ capacity, shards int }{
		{8, 0}, {8, 3}, {8, 6}, {8, -4}, {4, 8},
	} {
		if _, err := NewSharded(pg, bad.capacity, bad.shards); err == nil {
			t.Errorf("NewSharded(capacity=%d, shards=%d) accepted", bad.capacity, bad.shards)
		}
	}
	for _, ok := range []int{1, 2, 4, 64} {
		s, err := NewSharded(pg, 64, ok)
		if err != nil {
			t.Fatalf("NewSharded(64, %d): %v", ok, err)
		}
		if s.NumShards() != ok || s.Capacity() != 64 {
			t.Fatalf("shards=%d capacity=%d, want %d/64", s.NumShards(), s.Capacity(), ok)
		}
	}
}

// TestSingleShardMatchesPool is the determinism gate for paper-reproduction
// runs: with one shard, every counter matches the plain deterministic Pool
// on the same trace, byte for byte.
func TestSingleShardMatchesPool(t *testing.T) {
	const pages, capacity, ops = 40, 7, 5000
	s, _ := newShardedN(t, capacity, 1, pages)
	p, _ := newPoolN(t, capacity, pages)
	trace := randTrace(pages, ops, 123)
	replay(t, s, trace)
	replay(t, p, trace)
	if got, want := s.Stats(), p.Stats(); got != want {
		t.Fatalf("single-shard stats %+v, pool stats %+v", got, want)
	}
}

// TestShardedSequentialDeterminism replays one trace through two
// identically configured multi-shard pools and demands identical counters:
// replacement stays a pure function of the access sequence.
func TestShardedSequentialDeterminism(t *testing.T) {
	const pages, capacity, shards, ops = 64, 16, 4, 8000
	a, _ := newShardedN(t, capacity, shards, pages)
	b, _ := newShardedN(t, capacity, shards, pages)
	trace := randTrace(pages, ops, 99)
	replay(t, a, trace)
	replay(t, b, trace)
	if a.Stats() != b.Stats() {
		t.Fatalf("same trace, different stats: %+v vs %+v", a.Stats(), b.Stats())
	}
	as, bs := a.ShardStats(), b.ShardStats()
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("shard %d diverged: %+v vs %+v", i, as[i], bs[i])
		}
	}
}

// TestShardedSpreadsPages proves the page-number hash actually distributes
// the tree's densely allocated page ids: with plenty of pages every shard
// must see traffic.
func TestShardedSpreadsPages(t *testing.T) {
	const pages, capacity, shards = 256, 64, 8
	s, _ := newShardedN(t, capacity, shards, pages)
	for id := 0; id < pages; id++ {
		f, err := s.Fetch(storage.PageID(id))
		if err != nil {
			t.Fatal(err)
		}
		s.Release(f)
	}
	for i, st := range s.ShardStats() {
		if st.LogicalReads == 0 {
			t.Errorf("shard %d received no pages out of %d", i, pages)
		}
	}
}

// TestShardedConcurrentEviction hammers a small sharded buffer from many
// goroutines with mixed clean/dirty fetch traffic that constantly evicts,
// then checks the aggregated accounting against a sequential single-shard
// replay of the same trace: hit+miss totals (LogicalReads) must match
// exactly, and the cached-frames identity misses - evictions == Len() must
// hold on the concurrent run. Run under -race this is also the memory-safety
// gate for the sharded fast path.
func TestShardedConcurrentEviction(t *testing.T) {
	// Every worker pins at most one frame at a time, and all of them could
	// momentarily pin pages of the same shard, so each shard's capacity
	// (total/shards) must be at least the worker count or the hammer could
	// legitimately hit ErrPoolExhausted.
	const (
		pages    = 48
		capacity = 32
		shards   = 4
		workers  = 8
		opsEach  = 3000
	)
	s, _ := newShardedN(t, capacity, shards, pages)

	traces := make([][]storage.PageID, workers)
	for w := range traces {
		traces[w] = randTrace(pages, opsEach, int64(1000+w))
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(trace []storage.PageID, dirty bool) {
			defer wg.Done()
			for i, id := range trace {
				f, err := s.Fetch(id)
				if err != nil {
					errs <- err
					return
				}
				// A reader must never observe a page being evicted under
				// it: while pinned, the frame holds exactly its page's
				// bytes (page i is filled with byte(i)).
				if f.Data()[0] != byte(id) || f.Data()[63] != byte(id) {
					s.Release(f)
					errs <- errTornRead
					return
				}
				if dirty && i%16 == 0 {
					f.Data()[1] = f.Data()[0] // idempotent self-write
					f.MarkDirty()
				}
				s.Release(f)
			}
		}(traces[w], w%2 == 0)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	got := s.Stats()
	hits := got.LogicalReads - got.DiskReads
	if hits < 0 {
		t.Fatalf("negative hits: %+v", got)
	}
	if int64(s.Len()) != got.DiskReads-got.Evictions {
		t.Fatalf("cached frames %d != misses %d - evictions %d", s.Len(), got.DiskReads, got.Evictions)
	}

	// Sequential single-shard replay of the same trace: the aggregated
	// hit+miss total is trace-length-determined and must match exactly.
	seq, _ := newShardedN(t, capacity, 1, pages)
	for _, trace := range traces {
		replay(t, seq, trace)
	}
	want := seq.Stats()
	if got.LogicalReads != want.LogicalReads {
		t.Fatalf("concurrent hit+miss total %d != sequential replay total %d", got.LogicalReads, want.LogicalReads)
	}
	if wantHits := want.LogicalReads - want.DiskReads; wantHits < 0 {
		t.Fatalf("sequential replay negative hits: %+v", want)
	}
	// Both runs fetched every page at least once through a 32-of-48-page
	// buffer, so each saw at least one miss per distinct page touched.
	if got.DiskReads < int64(capacity) || want.DiskReads < int64(capacity) {
		t.Fatalf("implausibly few misses: concurrent %d, sequential %d", got.DiskReads, want.DiskReads)
	}
}

// errTornRead reports a pinned frame whose bytes did not match its page.
var errTornRead = &tornReadError{}

type tornReadError struct{}

func (*tornReadError) Error() string {
	return "buffer: pinned frame observed bytes from another page"
}

// TestShardedCreateFlush allocates pages through the sharded manager,
// writes through them, and checks FlushAll lands the bytes in the pager.
func TestShardedCreateFlush(t *testing.T) {
	s, pg := newShardedN(t, 16, 4, 0)
	var ids []storage.PageID
	for i := 0; i < 8; i++ {
		f, err := s.Create()
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = 0xA0 | byte(i)
		ids = append(ids, f.ID())
		s.Release(f)
	}
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for i, id := range ids {
		if err := pg.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0xA0|byte(i) {
			t.Fatalf("page %d lost its created contents", id)
		}
	}
	if err := s.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len after invalidate = %d", s.Len())
	}
}

// TestShardedResident pins pages resident across shards and checks they
// survive eviction traffic.
func TestShardedResident(t *testing.T) {
	s, _ := newShardedN(t, 16, 4, 32)
	resident := []storage.PageID{0, 1, 2, 3}
	if err := s.SetResident(resident); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		f, err := s.Fetch(storage.PageID(4 + i%28))
		if err != nil {
			t.Fatal(err)
		}
		s.Release(f)
	}
	s.ResetStats()
	for _, id := range resident {
		f, err := s.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		s.Release(f)
	}
	if got := s.Stats().DiskReads; got != 0 {
		t.Fatalf("resident pages re-read from disk %d times", got)
	}
}
