package buffer

import (
	"errors"
	"math/rand"
	"testing"

	"strtree/internal/storage"
)

func newClockPool(t *testing.T, capacity, pages int) *Pool {
	t.Helper()
	pg := storage.NewMemPager(64)
	for i := 0; i < pages; i++ {
		if _, err := pg.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	return NewPoolWithPolicy(pg, capacity, Clock)
}

func touchPage(t *testing.T, p *Pool, id storage.PageID) {
	t.Helper()
	f, err := p.Fetch(id)
	if err != nil {
		t.Fatalf("fetch %d: %v", id, err)
	}
	p.Release(f)
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || Clock.String() != "clock" {
		t.Fatal("policy names wrong")
	}
	if Policy(7).String() != "Policy(7)" {
		t.Fatal("unknown policy name wrong")
	}
	if NewPool(storage.NewMemPager(64), 1).Policy() != LRU {
		t.Fatal("default policy not LRU")
	}
}

func TestClockBasicHitMiss(t *testing.T) {
	p := newClockPool(t, 4, 8)
	touchPage(t, p, 0)
	touchPage(t, p, 0)
	s := p.Stats()
	if s.LogicalReads != 2 || s.DiskReads != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestClockSecondChance(t *testing.T) {
	p := newClockPool(t, 3, 10)
	touchPage(t, p, 0)
	touchPage(t, p, 1)
	touchPage(t, p, 2)
	// All reference bits set: the first eviction sweep clears them and
	// evicts page 0 (slot order), leaving pages 1 and 2 with clear bits
	// and page 3 in slot 0.
	touchPage(t, p, 3)
	// Re-reference page 1: its bit is set again, so the next sweep must
	// skip it (the second chance) and evict page 2 instead.
	touchPage(t, p, 1)
	touchPage(t, p, 4)
	p.ResetStats()
	touchPage(t, p, 1)
	if p.Stats().DiskReads != 0 {
		t.Fatal("re-referenced page 1 was evicted despite second chance")
	}
	touchPage(t, p, 2)
	if p.Stats().DiskReads != 1 {
		t.Fatal("page 2 should have been the victim")
	}
}

func TestClockEvictsUnreferenced(t *testing.T) {
	p := newClockPool(t, 2, 6)
	touchPage(t, p, 0)
	touchPage(t, p, 1)
	// Stream through pages 2..5: every new fetch must evict something and
	// the pool keeps working.
	for id := storage.PageID(2); id < 6; id++ {
		touchPage(t, p, id)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.Stats().Evictions != 4 {
		t.Fatalf("evictions = %d", p.Stats().Evictions)
	}
}

func TestClockAllPinnedExhausts(t *testing.T) {
	p := newClockPool(t, 2, 4)
	f0, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := p.Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fetch(2); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v", err)
	}
	p.Release(f0)
	p.Release(f1)
	touchPage(t, p, 2)
}

func TestClockDirtyWriteBack(t *testing.T) {
	pg := storage.NewMemPager(64)
	for i := 0; i < 4; i++ {
		if _, err := pg.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	p := NewPoolWithPolicy(pg, 1, Clock)
	f, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 0x5A
	f.MarkDirty()
	p.Release(f)
	// Evict by fetching another page.
	f2, err := p.Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f2)
	got := make([]byte, 64)
	if err := pg.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x5A {
		t.Fatal("dirty page lost on clock eviction")
	}
}

func TestClockResidentNeverEvicted(t *testing.T) {
	p := newClockPool(t, 3, 10)
	if err := p.SetResident([]storage.PageID{0}); err != nil {
		t.Fatal(err)
	}
	for id := storage.PageID(1); id < 10; id++ {
		touchPage(t, p, id)
	}
	p.ResetStats()
	touchPage(t, p, 0)
	if p.Stats().DiskReads != 0 {
		t.Fatal("resident page evicted under clock")
	}
}

func TestClockInvalidateResets(t *testing.T) {
	p := newClockPool(t, 4, 8)
	for id := storage.PageID(0); id < 4; id++ {
		touchPage(t, p, id)
	}
	if err := p.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after invalidate", p.Len())
	}
	// Pool keeps working after the reset.
	for id := storage.PageID(0); id < 8; id++ {
		touchPage(t, p, id)
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
}

// TestClockApproximatesLRU: on a skewed trace the clock miss count should
// be within a modest factor of LRU's (that is the whole point of the
// algorithm).
func TestClockApproximatesLRU(t *testing.T) {
	const (
		pages    = 64
		capacity = 8
		ops      = 8000
	)
	mk := func(policy Policy) *Pool {
		pg := storage.NewMemPager(64)
		for i := 0; i < pages; i++ {
			if _, err := pg.Alloc(); err != nil {
				t.Fatal(err)
			}
		}
		return NewPoolWithPolicy(pg, capacity, policy)
	}
	lru := mk(LRU)
	clock := mk(Clock)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < ops; i++ {
		id := storage.PageID(rng.Intn(pages))
		if rng.Intn(3) > 0 {
			id = storage.PageID(rng.Intn(pages / 8)) // hot set
		}
		touchPage(t, lru, id)
		touchPage(t, clock, id)
	}
	l := lru.Stats().DiskReads
	c := clock.Stats().DiskReads
	if c > l*13/10 {
		t.Fatalf("clock misses %d, LRU misses %d: approximation too loose", c, l)
	}
}
