package buffer

import "strtree/internal/storage"

// Manager is the page-buffer interface the tree layers program against.
// Two implementations exist:
//
//   - Pool: a single LRU (or Clock) cache behind one mutex. Its replacement
//     decisions are a deterministic function of the fetch sequence, which is
//     what the paper-reproduction experiments rely on: the same trace always
//     produces the same miss counts.
//   - Sharded: N independent Pools selected by a page-number hash, for
//     concurrent query serving. Fetches on different shards proceed in
//     parallel; Stats aggregates the shards so experiment accounting is
//     unchanged. With one shard it is byte-for-byte the deterministic Pool.
//
// All implementations are safe for concurrent use. The pin protocol is the
// concurrency contract: a frame returned by Fetch or Create stays pinned —
// and therefore cannot be evicted or have its bytes reused under the caller
// — until the matching Release.
type Manager interface {
	// Fetch pins the page, reading it from the pager on a miss. Every
	// Fetch must be paired with a Release, on every exit path including
	// early stops and context cancellation: zero-copy views over the
	// frame's bytes are only valid inside that pin scope.
	Fetch(id storage.PageID) (*Frame, error)
	// Create pins a zeroed frame for a freshly allocated page.
	Create() (*Frame, error)
	// Release unpins a frame obtained from Fetch or Create.
	Release(f *Frame)
	// FetchMut pins the page exclusively for in-place mutation: it fails
	// if the frame carries any other pin, and while it is held Fetch on
	// the same page fails, so a half-patched page is never observable
	// through the pin protocol. Every FetchMut must be paired with a
	// ReleaseMut.
	FetchMut(id storage.PageID) (*Frame, error)
	// ReleaseMut drops a write pin, marking the frame dirty. Its error
	// reports a pin-protocol violation (the frame was not write-pinned);
	// callers must not drop it.
	ReleaseMut(f *Frame) error
	// FlushAll writes every dirty frame to the pager; frames stay cached.
	FlushAll() error
	// Invalidate drops every frame, writing back dirty ones first.
	Invalidate() error
	// SetResident loads the given pages and pins them permanently.
	SetResident(ids []storage.PageID) error
	// SetTracer installs an observer for every Fetch. With more than one
	// shard the callback may run concurrently from different shards and
	// must be safe for concurrent use.
	SetTracer(fn func(id storage.PageID, hit bool))
	// Stats returns a snapshot of the counters, summed over shards.
	Stats() Stats
	// ResetStats zeroes the counters.
	ResetStats()
	// Pager returns the underlying pager.
	Pager() storage.Pager
	// Capacity returns the total buffer size in pages.
	Capacity() int
	// Len returns how many frames are currently cached.
	Len() int
}

// Both buffer implementations must satisfy the interface.
var (
	_ Manager = (*Pool)(nil)
	_ Manager = (*Sharded)(nil)
)
