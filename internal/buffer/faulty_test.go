package buffer

import (
	"errors"
	"testing"

	"strtree/internal/storage"
)

var errInjected = errors.New("injected fault")

// faultyPool builds a pool over a FaultyPager with n zeroed pages.
func faultyPool(t *testing.T, capacity, n int) (*Pool, *storage.FaultyPager) {
	t.Helper()
	inner := storage.NewMemPager(64)
	for i := 0; i < n; i++ {
		if _, err := inner.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	fp := storage.NewFaultyPager(inner)
	return NewPool(fp, capacity), fp
}

func TestFetchSurfacesReadError(t *testing.T) {
	p, fp := faultyPool(t, 4, 4)
	fp.FailReads(func(id storage.PageID) error {
		if id == 2 {
			return errInjected
		}
		return nil
	})
	if _, err := p.Fetch(2); !errors.Is(err, errInjected) {
		t.Fatalf("read error not surfaced: %v", err)
	}
	// The failed fetch must not leave a phantom frame.
	if p.Len() != 0 {
		t.Fatalf("pool holds %d frames after failed fetch", p.Len())
	}
	// Stats: the miss never completed, so no disk read is counted.
	if s := p.Stats(); s.DiskReads != 0 {
		t.Fatalf("failed read counted: %+v", s)
	}
	// Other pages still work.
	f, err := p.Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f)
}

func TestEvictionSurfacesWriteError(t *testing.T) {
	p, fp := faultyPool(t, 1, 3)
	f, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	f.MarkDirty()
	p.Release(f)
	fp.FailWrites(func(storage.PageID) error { return errInjected })
	// Evicting dirty page 0 to load page 1 must fail loudly, not drop the
	// data.
	if _, err := p.Fetch(1); !errors.Is(err, errInjected) {
		t.Fatalf("eviction write error not surfaced: %v", err)
	}
	// The dirty page is still resident and intact.
	fp.FailWrites(nil)
	f2, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f2)
	if s := p.Stats(); s.Evictions != 0 {
		t.Fatalf("eviction recorded despite failure: %+v", s)
	}
}

func TestFlushAllSurfacesWriteError(t *testing.T) {
	p, fp := faultyPool(t, 4, 2)
	f, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	f.MarkDirty()
	p.Release(f)
	fp.FailWrites(func(storage.PageID) error { return errInjected })
	if err := p.FlushAll(); !errors.Is(err, errInjected) {
		t.Fatalf("flush error not surfaced: %v", err)
	}
	// After the fault clears, flush succeeds and the page lands.
	fp.FailWrites(nil)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

// TestClockFailedReadDoesNotPoisonRing reproduces the stale-slot hazard:
// a Clock eviction whose replacement read fails leaves the frame in the
// ring; if its old id were kept, a later sweep of that slot would delete
// the live mapping of whichever frame reloaded the page.
func TestClockFailedReadDoesNotPoisonRing(t *testing.T) {
	inner := storage.NewMemPager(64)
	for i := 0; i < 8; i++ {
		if _, err := inner.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	fp := storage.NewFaultyPager(inner)
	p := NewPoolWithPolicy(fp, 2, Clock)
	touch := func(id storage.PageID) error {
		f, err := p.Fetch(id)
		if err != nil {
			return err
		}
		p.Release(f)
		return nil
	}
	if err := touch(0); err != nil {
		t.Fatal(err)
	}
	if err := touch(1); err != nil {
		t.Fatal(err)
	}
	// Evict page 0's slot but fail the replacement read of page 2.
	fp.FailReads(func(id storage.PageID) error {
		if id == 2 {
			return errInjected
		}
		return nil
	})
	if err := touch(2); !errors.Is(err, errInjected) {
		t.Fatalf("expected injected error, got %v", err)
	}
	fp.FailReads(nil)
	// Reload page 0: it lands in a fresh frame while the poisoned slot
	// still sits in the ring. Hammer evictions; page 0's mapping must
	// survive sweeps of the stale slot.
	if err := touch(0); err != nil {
		t.Fatal(err)
	}
	for id := storage.PageID(3); id < 8; id++ {
		if err := touch(id); err != nil {
			t.Fatalf("fetch %d: %v", id, err)
		}
		// Keep 0 hot so only the stale slot and streaming pages recycle.
		if err := touch(0); err != nil {
			t.Fatalf("refetch 0 after %d: %v", id, err)
		}
	}
	if p.Len() > 2 {
		t.Fatalf("pool holds %d frames, capacity 2: ring grew", p.Len())
	}
}

func TestCreateSurfacesAllocError(t *testing.T) {
	p, fp := faultyPool(t, 4, 0)
	fp.FailAllocs(func() error { return errInjected })
	if _, err := p.Create(); !errors.Is(err, errInjected) {
		t.Fatalf("alloc error not surfaced: %v", err)
	}
}
