package buffer

import (
	"fmt"

	"strtree/internal/storage"
)

// Sharded is a buffer manager split into a power-of-two number of
// independent LRU shards selected by a page-number hash. Each shard is a
// plain Pool with its own lock, LRU list and hit/miss counters, so fetches
// of pages in different shards proceed in parallel instead of serializing
// behind one mutex — the property the concurrent read path (package query's
// BatchExecutor) needs to scale past one core.
//
// Sharding changes which page is evicted (each shard runs LRU over its own
// subset rather than globally), so aggregate miss counts under memory
// pressure can differ slightly from a single LRU of the same total
// capacity. With Shards == 1 the behavior — including every eviction
// decision and therefore every counter — is byte-for-byte that of Pool;
// paper-reproduction runs use that mode.
//
// Readers are protected by the same pin protocol as Pool: a fetched frame
// is pinned until Release, and a shard never evicts a pinned frame, so no
// reader ever observes a page being evicted (or its bytes rewritten) under
// it. Note the capacity consequence: every concurrently pinned page that
// hashes to one shard occupies a frame there, so a shard must have room
// for the worst-case pins it can receive. Tree traversals pin one page per
// goroutine at a time; keep capacity/shards comfortably above the worker
// count.
type Sharded struct {
	pager  storage.Pager
	shards []*Pool
	shift  uint // 64 - log2(len(shards)); selects the hash's top bits
	total  int  // total capacity across shards
}

// NewSharded creates a sharded LRU manager of the given total capacity.
// shards must be a power of two and at most capacity; shards == 1 gives
// the deterministic single-Pool behavior. Capacity is divided as evenly as
// possible, earlier shards taking the remainder.
func NewSharded(pager storage.Pager, capacity, shards int) (*Sharded, error) {
	if shards < 1 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("buffer: shard count %d is not a power of two", shards)
	}
	if capacity < shards {
		return nil, fmt.Errorf("buffer: capacity %d < %d shards", capacity, shards)
	}
	s := &Sharded{
		pager:  pager,
		shards: make([]*Pool, shards),
		shift:  64,
		total:  capacity,
	}
	for bits := 0; 1<<bits < shards; bits++ {
		s.shift--
	}
	base, rem := capacity/shards, capacity%shards
	for i := range s.shards {
		c := base
		if i < rem {
			c++
		}
		s.shards[i] = NewPool(pager, c)
	}
	return s, nil
}

// shard returns the pool owning page id. The Fibonacci multiplicative hash
// spreads the tree's densely allocated, level-clustered page numbers
// across shards; its top bits select the shard. A shift of 64 (one shard)
// yields index 0 by Go's defined >=width shift semantics.
func (s *Sharded) shard(id storage.PageID) *Pool {
	return s.shards[(uint64(id)*0x9E3779B97F4A7C15)>>s.shift]
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Fetch pins the page in its owning shard, reading from the pager on a
// miss. Every Fetch must be paired with a Release.
func (s *Sharded) Fetch(id storage.PageID) (*Frame, error) {
	return s.shard(id).Fetch(id)
}

// Create allocates a page from the pager and pins a zeroed dirty frame for
// it in the owning shard.
func (s *Sharded) Create() (*Frame, error) {
	id, err := s.pager.Alloc()
	if err != nil {
		return nil, err
	}
	return s.shard(id).adopt(id)
}

// Release unpins a frame obtained from Fetch or Create.
func (s *Sharded) Release(f *Frame) {
	s.shard(f.ID()).Release(f)
}

// FetchMut pins the page exclusively for in-place mutation in its owning
// shard. Every FetchMut must be paired with a ReleaseMut.
func (s *Sharded) FetchMut(id storage.PageID) (*Frame, error) {
	return s.shard(id).FetchMut(id)
}

// ReleaseMut drops a write pin obtained from FetchMut, marking the frame
// dirty in its owning shard.
func (s *Sharded) ReleaseMut(f *Frame) error {
	return s.shard(f.ID()).ReleaseMut(f)
}

// FlushAll writes every dirty frame in every shard to the pager.
func (s *Sharded) FlushAll() error {
	for _, p := range s.shards {
		if err := p.FlushAll(); err != nil {
			return err
		}
	}
	return nil
}

// Invalidate drops every frame in every shard, writing back dirty ones
// first. It fails if any frame is pinned.
func (s *Sharded) Invalidate() error {
	for _, p := range s.shards {
		if err := p.Invalidate(); err != nil {
			return err
		}
	}
	return nil
}

// SetResident loads the given pages and marks them permanently resident in
// their owning shards. Each shard's resident set must stay below that
// shard's capacity.
func (s *Sharded) SetResident(ids []storage.PageID) error {
	perShard := make(map[*Pool][]storage.PageID, len(s.shards))
	for _, id := range ids {
		p := s.shard(id)
		perShard[p] = append(perShard[p], id)
	}
	for _, p := range s.shards {
		if group := perShard[p]; len(group) > 0 {
			if err := p.SetResident(group); err != nil {
				return err
			}
		}
	}
	return nil
}

// SetTracer installs fn on every shard. With more than one shard the
// callback can run concurrently from different shards; it must be safe for
// concurrent use. Pass nil to remove.
func (s *Sharded) SetTracer(fn func(id storage.PageID, hit bool)) {
	for _, p := range s.shards {
		p.SetTracer(fn)
	}
}

// Stats sums the per-shard counters, so callers account for a sharded
// buffer exactly as for a single pool.
func (s *Sharded) Stats() Stats {
	var sum Stats
	for _, p := range s.shards {
		st := p.Stats()
		sum.LogicalReads += st.LogicalReads
		sum.DiskReads += st.DiskReads
		sum.DiskWrites += st.DiskWrites
		sum.Evictions += st.Evictions
		sum.Pinned += st.Pinned
	}
	return sum
}

// ShardStats returns each shard's own counters, for balance diagnostics.
func (s *Sharded) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, p := range s.shards {
		out[i] = p.Stats()
	}
	return out
}

// ResetStats zeroes every shard's counters.
func (s *Sharded) ResetStats() {
	for _, p := range s.shards {
		p.ResetStats()
	}
}

// Pager returns the underlying pager shared by all shards.
func (s *Sharded) Pager() storage.Pager { return s.pager }

// Capacity returns the total buffer size in pages across shards.
func (s *Sharded) Capacity() int { return s.total }

// Len returns how many frames are currently cached across shards.
func (s *Sharded) Len() int {
	n := 0
	for _, p := range s.shards {
		n += p.Len()
	}
	return n
}
