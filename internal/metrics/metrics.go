// Package metrics computes the paper's secondary comparison metric: the
// sum of the area and perimeter of the MBRs of the R-tree nodes, reported
// both for the whole tree (all nodes at all levels) and for the leaf level
// only. The paper argues the leaf-level numbers matter most "since the
// non-leaf level nodes will likely be buffered" (Section 3).
package metrics

import (
	"strtree/internal/node"
	"strtree/internal/rtree"
	"strtree/internal/storage"
)

// TreeMetrics are the per-tree totals of Tables 4, 6, 8 and 10.
type TreeMetrics struct {
	// LeafArea and LeafMargin sum over the MBRs of leaf nodes.
	LeafArea   float64
	LeafMargin float64
	// TotalArea and TotalMargin sum over the MBRs of all nodes, leaves
	// included.
	TotalArea   float64
	TotalMargin float64
	// Nodes and LeafNodes count pages.
	Nodes     int
	LeafNodes int
}

// ExpectedAccesses returns the analytical expected number of node
// accesses for a region query with the given per-axis extents, under the
// Kamel-Faloutsos model the paper's Section 3 leans on: a query whose
// lower-left corner is uniform in the unit space intersects a node whose
// MBR has sides s_d with probability prod_d min(1, s_d + q_d), so the
// expectation is the sum of that product over all nodes. Point queries
// use zero extents (the probability reduces to the MBR's area).
//
// The model assumes no buffering — every intersected node is a disk
// access. Comparing it with measured buffer misses quantifies the paper's
// warning that area/perimeter metrics "can be misleading if buffering is
// not considered" (see the extmodel experiment).
func ExpectedAccesses(t *rtree.Tree, extents []float64) (float64, error) {
	expected := 0.0
	err := t.Walk(func(_ storage.PageID, n *node.Node) bool {
		if len(n.Entries) == 0 {
			return true
		}
		mbr := n.MBR()
		p := 1.0
		for d := 0; d < mbr.Dim(); d++ {
			q := 0.0
			if d < len(extents) {
				q = extents[d]
			}
			side := mbr.Side(d) + q
			if side > 1 {
				side = 1
			}
			p *= side
		}
		expected += p
		return true
	})
	return expected, err
}

// Measure walks the tree and accumulates its metrics. The walk touches
// every page; callers that are also counting query accesses should reset
// the buffer-pool statistics afterwards.
func Measure(t *rtree.Tree) (TreeMetrics, error) {
	var m TreeMetrics
	err := t.Walk(func(_ storage.PageID, n *node.Node) bool {
		if len(n.Entries) == 0 {
			return true
		}
		mbr := n.MBR()
		a, p := mbr.Area(), mbr.Margin()
		m.TotalArea += a
		m.TotalMargin += p
		m.Nodes++
		if n.IsLeaf() {
			m.LeafArea += a
			m.LeafMargin += p
			m.LeafNodes++
		}
		return true
	})
	return m, err
}
