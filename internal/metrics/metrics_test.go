package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"strtree/internal/buffer"
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/rtree"
	"strtree/internal/storage"
)

type xOrder struct{}

func (xOrder) Name() string { return "x" }
func (xOrder) Order(entries []node.Entry, n, level int) {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Rect.CenterAxis(0) < entries[j].Rect.CenterAxis(0)
	})
}

func TestMeasureHandComputed(t *testing.T) {
	// 4 points on a line, capacity 2: two leaves ([0,0.1] and [0.2,0.3] in
	// x, all at y=0) and a root.
	pool := buffer.NewPool(storage.NewMemPager(4096), 32)
	tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	entries := []node.Entry{
		{Rect: geom.PointRect(geom.Pt2(0.0, 0)), Ref: 0},
		{Rect: geom.PointRect(geom.Pt2(0.1, 0)), Ref: 1},
		{Rect: geom.PointRect(geom.Pt2(0.2, 0)), Ref: 2},
		{Rect: geom.PointRect(geom.Pt2(0.3, 0)), Ref: 3},
	}
	if err := tr.BulkLoad(entries, xOrder{}); err != nil {
		t.Fatal(err)
	}
	m, err := Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes != 3 || m.LeafNodes != 2 {
		t.Fatalf("nodes = %d leaves = %d", m.Nodes, m.LeafNodes)
	}
	// Leaves: [0, 0.1] and [0.2, 0.3] in x, degenerate in y.
	// Areas 0; margins 2*0.1 each.
	if m.LeafArea != 0 {
		t.Fatalf("leaf area = %g", m.LeafArea)
	}
	if math.Abs(m.LeafMargin-0.4) > 1e-12 {
		t.Fatalf("leaf margin = %g, want 0.4", m.LeafMargin)
	}
	// Root MBR: [0, 0.3] x {0}: margin 0.6. Totals: 0.4 + 0.6 = 1.0.
	if math.Abs(m.TotalMargin-1.0) > 1e-12 {
		t.Fatalf("total margin = %g, want 1.0", m.TotalMargin)
	}
	if m.TotalArea != 0 {
		t.Fatalf("total area = %g", m.TotalArea)
	}
}

func TestMeasureAreas(t *testing.T) {
	pool := buffer.NewPool(storage.NewMemPager(4096), 32)
	tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	entries := []node.Entry{
		{Rect: geom.R2(0, 0, 0.2, 0.2), Ref: 0},
		{Rect: geom.R2(0.1, 0.1, 0.3, 0.3), Ref: 1},
	}
	if err := tr.BulkLoad(entries, xOrder{}); err != nil {
		t.Fatal(err)
	}
	m, err := Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Single leaf = root: MBR [0,0.3]^2, area 0.09, margin 1.2. Leaf and
	// total coincide.
	if math.Abs(m.LeafArea-0.09) > 1e-12 || math.Abs(m.TotalArea-0.09) > 1e-12 {
		t.Fatalf("areas: leaf %g total %g", m.LeafArea, m.TotalArea)
	}
	if math.Abs(m.LeafMargin-1.2) > 1e-12 {
		t.Fatalf("leaf margin %g", m.LeafMargin)
	}
	if m.Nodes != 1 || m.LeafNodes != 1 {
		t.Fatalf("nodes %d leaves %d", m.Nodes, m.LeafNodes)
	}
}

func TestExpectedAccessesPointQueryIsAreaSum(t *testing.T) {
	pool := buffer.NewPool(storage.NewMemPager(4096), 32)
	tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	entries := []node.Entry{
		{Rect: geom.R2(0, 0, 0.2, 0.2), Ref: 0},
		{Rect: geom.R2(0.1, 0.1, 0.3, 0.3), Ref: 1},
		{Rect: geom.R2(0.6, 0.6, 0.9, 0.9), Ref: 2},
		{Rect: geom.R2(0.7, 0.7, 1.0, 1.0), Ref: 3},
	}
	if err := tr.BulkLoad(entries, xOrder{}); err != nil {
		t.Fatal(err)
	}
	got, err := ExpectedAccesses(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	// With zero extents the per-node probability is its MBR area, so the
	// expectation equals the total-area metric.
	if math.Abs(got-m.TotalArea) > 1e-12 {
		t.Fatalf("point-query expectation %g != total area %g", got, m.TotalArea)
	}
	// Larger queries expect more accesses, capped at the node count.
	big, err := ExpectedAccesses(tr, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if big <= got {
		t.Fatalf("extent did not increase expectation: %g <= %g", big, got)
	}
	if big > float64(m.Nodes)+1e-12 {
		t.Fatalf("expectation %g exceeds node count %d", big, m.Nodes)
	}
}

func TestExpectedAccessesPredictsUnbufferedMeasurement(t *testing.T) {
	// The model assumes no buffering, so measure with a 3-page pool where
	// cross-query reuse is negligible; clamped boundary queries keep the
	// match approximate, hence the generous tolerance band.
	pool := buffer.NewPool(storage.NewMemPager(4096), 3)
	tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: 50})
	if err != nil {
		t.Fatal(err)
	}
	rng := randEntries(5000, 7)
	if err := tr.BulkLoad(rng, xOrder{}); err != nil {
		t.Fatal(err)
	}
	const extent = 0.1
	model, err := ExpectedAccesses(tr, []float64{extent, extent})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Invalidate(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	const queries = 400
	r := randQueries(queries, extent, 8)
	for _, q := range r {
		if err := tr.Search(q, func(node.Entry) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	measured := float64(pool.Stats().DiskReads) / queries
	if measured < model*0.6 || measured > model*1.25 {
		t.Fatalf("model %g vs measured %g: disagreement beyond tolerance", model, measured)
	}
}

func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func randEntries(n int, seed int64) []node.Entry {
	rng := randSource(seed)
	out := make([]node.Entry, n)
	for i := range out {
		x, y := rng.Float64(), rng.Float64()
		s := rng.Float64() * 0.01
		r, _ := geom.NewRect(geom.Pt2(x, y), geom.Pt2(math.Min(x+s, 1), math.Min(y+s, 1)))
		out[i] = node.Entry{Rect: r, Ref: uint64(i)}
	}
	return out
}

func randQueries(n int, extent float64, seed int64) []geom.Rect {
	rng := randSource(seed)
	out := make([]geom.Rect, n)
	for i := range out {
		x, y := rng.Float64(), rng.Float64()
		hi := geom.UnitSquare().Clamp(geom.Pt2(x+extent, y+extent))
		r, _ := geom.NewRect(geom.Pt2(x, y), hi)
		out[i] = r
	}
	return out
}

func TestMeasureEmptyTree(t *testing.T) {
	pool := buffer.NewPool(storage.NewMemPager(4096), 32)
	tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Measure(tr)
	if err != nil {
		t.Fatal(err)
	}
	if m != (TreeMetrics{}) {
		t.Fatalf("empty tree metrics = %+v", m)
	}
}
