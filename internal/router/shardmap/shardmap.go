// Package shardmap defines the spatial shard map behind the fan-out
// router: the assignment of dataset regions to backend index files and
// server addresses. It is the STR paper's core idea lifted one level —
// instead of slicing a page's worth of rectangles into tiles, the whole
// dataset is sliced into STR tiles of shard size, so each shard covers a
// tight, near-disjoint region and a window query only has to visit the
// shards whose MBRs it overlaps.
//
// The map travels as a JSON manifest (`shards.json`, written by
// `strload build -shards N`) listing each shard's MBR, item count, index
// file and replica addresses. The router loads it to prune fan-out; a
// backend loads it (strserve -map/-shard) to find its index file.
package shardmap

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/pack"
)

// FormatVersion is the manifest format's version field; readers reject
// manifests from a future format.
const FormatVersion = 1

// RectJSON is a rectangle's manifest shape: min and max corners as
// coordinate arrays.
type RectJSON struct {
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

// Rect converts to a geometry rectangle.
func (r RectJSON) Rect() geom.Rect {
	return geom.Rect{Min: geom.Point(r.Min), Max: geom.Point(r.Max)}
}

// Shard is one spatial shard: a region of the dataset, its index file,
// and the servers holding it.
type Shard struct {
	// ID is the shard's position in the manifest; merges concatenate in
	// ID order so router output is deterministic.
	ID int `json:"id"`
	// MBR bounds every item in the shard. Queries not intersecting it
	// cannot match the shard's items and skip its backends entirely.
	MBR RectJSON `json:"mbr"`
	// Count is the shard's item count at build time (informational).
	Count int `json:"count"`
	// Index is the shard's index file, relative to the manifest.
	Index string `json:"index,omitempty"`
	// Addrs lists the servers holding this shard, first preferred; more
	// than one means replicas, which the router uses for retry-on-failure.
	Addrs []string `json:"addrs,omitempty"`
}

// Map is a complete shard map.
type Map struct {
	Version int     `json:"version"`
	Dims    int     `json:"dims"`
	Shards  []Shard `json:"shards"`
}

// Validate checks structural integrity: at least one shard, IDs equal to
// positions, valid MBRs of the declared dimensionality.
func (m *Map) Validate() error {
	if m.Version > FormatVersion {
		return fmt.Errorf("shardmap: manifest version %d is newer than supported %d", m.Version, FormatVersion)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("shardmap: no shards")
	}
	if m.Dims < 1 {
		return fmt.Errorf("shardmap: dims %d", m.Dims)
	}
	for i, s := range m.Shards {
		if s.ID != i {
			return fmt.Errorf("shardmap: shard at position %d has id %d (ids must be 0..%d in order)", i, s.ID, len(m.Shards)-1)
		}
		r := s.MBR.Rect()
		if !r.Valid() || r.Dim() != m.Dims {
			return fmt.Errorf("shardmap: shard %d: invalid %d-d MBR %v", i, m.Dims, r)
		}
	}
	return nil
}

// Load reads and validates a manifest file.
func Load(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shardmap: %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}

// Save writes the manifest as indented JSON. Output is deterministic:
// field order follows the struct definitions.
func (m *Map) Save(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// IndexPath resolves shard i's index file against the manifest's
// directory, the convention strload writes and strserve reads.
func (m *Map) IndexPath(manifestPath string, i int) string {
	idx := m.Shards[i].Index
	if filepath.IsAbs(idx) {
		return idx
	}
	return filepath.Join(filepath.Dir(manifestPath), idx)
}

// OverlapRect returns the IDs of shards whose MBR intersects q, in
// manifest order — the fan-out set for window and count queries. Closed-
// box semantics: touching edges intersect, matching the query layer.
func (m *Map) OverlapRect(q geom.Rect) []int {
	out := make([]int, 0, len(m.Shards))
	for i, s := range m.Shards {
		if s.MBR.Rect().Intersects(q) {
			out = append(out, i)
		}
	}
	return out
}

// OverlapPoint returns the IDs of shards whose MBR contains p, in
// manifest order — the fan-out set for point queries.
func (m *Map) OverlapPoint(p geom.Point) []int {
	out := make([]int, 0, len(m.Shards))
	for i, s := range m.Shards {
		if s.MBR.Rect().ContainsPoint(p) {
			out = append(out, i)
		}
	}
	return out
}

// All returns every shard ID in manifest order — the broadcast set for
// nearest-neighbor and stats requests, which cannot be pruned by the
// query geometry alone.
func (m *Map) All() []int {
	out := make([]int, len(m.Shards))
	for i := range out {
		out[i] = i
	}
	return out
}

// Partition splits entries into at most `shards` spatial shards using
// STR slab partitioning (pack.STRPartition): entries are reordered in
// place into STR tiling order and cut into contiguous runs of
// ceil(len/shards). It returns the resulting map — MBRs computed from
// the actual members, Index names left for the caller — and the entry
// slice of each shard (sub-slices of the reordered input). The partition
// is deterministic and identical at every worker count.
func Partition(entries []node.Entry, shards, workers int) (*Map, [][]node.Entry, error) {
	if len(entries) == 0 {
		return nil, nil, fmt.Errorf("shardmap: cannot partition an empty dataset")
	}
	if shards < 1 {
		return nil, nil, fmt.Errorf("shardmap: shard count %d", shards)
	}
	dims := entries[0].Rect.Dim()
	bounds := pack.STRPartition(entries, shards, workers)
	m := &Map{Version: FormatVersion, Dims: dims, Shards: make([]Shard, len(bounds))}
	parts := make([][]node.Entry, len(bounds))
	for i, b := range bounds {
		part := entries[b[0]:b[1]]
		parts[i] = part
		mbr := part[0].Rect.Clone()
		for _, e := range part[1:] {
			mbr.UnionInPlace(e.Rect)
		}
		m.Shards[i] = Shard{
			ID:    i,
			MBR:   RectJSON{Min: mbr.Min, Max: mbr.Max},
			Count: len(part),
		}
	}
	return m, parts, nil
}
