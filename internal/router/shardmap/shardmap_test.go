package shardmap

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"strtree/internal/geom"
	"strtree/internal/node"
)

// threeSlabMap is a hand-built map of three x-slabs over the unit
// square: [0,0.3], [0.3,0.6], [0.7,1.0] — slabs 1 and 2 share an edge
// with slab 0 and 1 respectively is deliberately broken: there is a gap
// (0.6,0.7) covered by no shard, and slabs 0/1 touch at x=0.3.
func threeSlabMap() *Map {
	return &Map{
		Version: FormatVersion,
		Dims:    2,
		Shards: []Shard{
			{ID: 0, MBR: RectJSON{Min: []float64{0, 0}, Max: []float64{0.3, 1}}},
			{ID: 1, MBR: RectJSON{Min: []float64{0.3, 0}, Max: []float64{0.6, 1}}},
			{ID: 2, MBR: RectJSON{Min: []float64{0.7, 0}, Max: []float64{1, 1}}},
		},
	}
}

// TestOverlapRectGeometry is the pruning-geometry table: touching edges,
// containment, empty overlap, gap queries, full-extent queries.
func TestOverlapRectGeometry(t *testing.T) {
	m := threeSlabMap()
	cases := []struct {
		name string
		q    geom.Rect
		want []int
	}{
		{"inside one shard", geom.R2(0.1, 0.1, 0.2, 0.2), []int{0}},
		{"spans two shards", geom.R2(0.2, 0.4, 0.4, 0.6), []int{0, 1}},
		{"covers everything", geom.R2(0, 0, 1, 1), []int{0, 1, 2}},
		{"contains a whole shard", geom.R2(0.25, -1, 0.65, 2), []int{0, 1}},
		{"contained in a shard", geom.R2(0.45, 0.45, 0.45, 0.45), []int{1}},
		{"touching edge intersects", geom.R2(0.6, 0, 0.65, 1), []int{1}}, // closed-box: x=0.6 touches shard 1
		{"shared boundary hits both", geom.R2(0.3, 0.5, 0.3, 0.5), []int{0, 1}},
		{"in the gap", geom.R2(0.62, 0.1, 0.68, 0.9), nil},
		{"outside the extent", geom.R2(1.5, 1.5, 2, 2), nil},
		{"corner touch", geom.R2(0.7, 1, 0.7, 1), []int{2}},
	}
	for _, tc := range cases {
		got := m.OverlapRect(tc.q)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: OverlapRect(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

func TestOverlapPointGeometry(t *testing.T) {
	m := threeSlabMap()
	cases := []struct {
		name string
		p    geom.Point
		want []int
	}{
		{"interior", geom.Pt2(0.15, 0.5), []int{0}},
		{"on a shared boundary", geom.Pt2(0.3, 0.5), []int{0, 1}},
		{"on an outer edge", geom.Pt2(1, 0.5), []int{2}},
		{"in the gap", geom.Pt2(0.65, 0.5), nil},
		{"outside", geom.Pt2(-0.1, 0.5), nil},
	}
	for _, tc := range cases {
		got := m.OverlapPoint(tc.p)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: OverlapPoint(%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
}

func TestAll(t *testing.T) {
	if got := threeSlabMap().All(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("All() = %v", got)
	}
}

func randomEntries(n int, seed int64) []node.Entry {
	rng := rand.New(rand.NewSource(seed))
	entries := make([]node.Entry, n)
	for i := range entries {
		x, y := rng.Float64(), rng.Float64()
		entries[i] = node.Entry{
			Rect: geom.Rect{Min: geom.Pt2(x, y), Max: geom.Pt2(x+0.005, y+0.005)},
			Ref:  uint64(i),
		}
	}
	return entries
}

func TestPartitionCoversAndBounds(t *testing.T) {
	entries := randomEntries(10000, 3)
	m, parts, err := Partition(entries, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 || len(m.Shards) != 4 {
		t.Fatalf("parts = %d, shards = %d, want 4", len(parts), len(m.Shards))
	}
	total := 0
	for i, part := range parts {
		total += len(part)
		if m.Shards[i].Count != len(part) {
			t.Errorf("shard %d count %d, part has %d", i, m.Shards[i].Count, len(part))
		}
		mbr := m.Shards[i].MBR.Rect()
		for _, e := range part {
			if !mbr.Contains(e.Rect) {
				t.Fatalf("shard %d MBR %v does not contain member %v", i, mbr, e.Rect)
			}
		}
	}
	if total != 10000 {
		t.Fatalf("parts cover %d entries, want 10000", total)
	}
	// Every entry must land in the shard the pruning would route a point
	// query for its center to.
	for i, part := range parts {
		for _, e := range part[:10] { // spot-check, full loop is O(n*shards)
			ids := m.OverlapRect(e.Rect)
			found := false
			for _, id := range ids {
				if id == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("entry %d in shard %d, but OverlapRect(%v) = %v", e.Ref, i, e.Rect, ids)
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, _, err := Partition(nil, 3, 1); err == nil {
		t.Error("empty partition accepted")
	}
	if _, _, err := Partition(randomEntries(10, 1), 0, 1); err == nil {
		t.Error("zero shards accepted")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	entries := randomEntries(500, 9)
	m, _, err := Partition(entries, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Shards {
		m.Shards[i].Index = filepath.Base(dir) + ".str" // any relative name
		m.Shards[i].Addrs = []string{"127.0.0.1:7070"}
	}
	path := filepath.Join(dir, "shards.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
	}
	if p := got.IndexPath(path, 0); p != filepath.Join(dir, got.Shards[0].Index) {
		t.Fatalf("IndexPath = %q", p)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Map)
	}{
		{"no shards", func(m *Map) { m.Shards = nil }},
		{"future version", func(m *Map) { m.Version = FormatVersion + 1 }},
		{"bad dims", func(m *Map) { m.Dims = 0 }},
		{"id out of order", func(m *Map) { m.Shards[0].ID = 2 }},
		{"inverted mbr", func(m *Map) { m.Shards[1].MBR = RectJSON{Min: []float64{1, 1}, Max: []float64{0, 0}} }},
		{"dims mismatch", func(m *Map) { m.Shards[2].MBR = RectJSON{Min: []float64{0}, Max: []float64{1}} }},
	}
	for _, tc := range cases {
		m := threeSlabMap()
		tc.mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
	}
}
