package router

// This file is the router's view of one backend server: a bounded pool
// of protocol clients, passive health tracking (consecutive transport
// failures eject the backend from rotation), and the counters the admin
// endpoint exposes per backend. Active re-probing of ejected backends
// lives in probe.go.

import (
	"sync/atomic"
	"time"

	"strtree/internal/server"
)

// backend is one server address the router fans out to. A shard with
// replicas maps to several backends; the same address shared by several
// shards maps to one backend (pool and health are per address).
type backend struct {
	addr string

	// pool holds the backend's protocol clients; its capacity is the
	// per-backend concurrency bound. A scatter goroutine takes a client
	// for one round trip and puts it back, so at most cap(pool) requests
	// are in flight to this backend at once and the rest wait (or give
	// up when the request deadline expires first).
	pool chan *server.Client

	// probe is the health prober's dedicated client, used only by the
	// single probe goroutine — never by request traffic, so a probe can
	// not be starved by a busy pool.
	probe *server.Client

	// consecFails counts transport failures since the last success;
	// crossing the ejection threshold flips ejected.
	consecFails atomic.Uint32
	// ejected marks the backend out of rotation: scatter skips it until
	// a probe (or a straggling in-flight success) brings it back.
	ejected atomic.Bool

	// Counters for the admin endpoint, all monotonic.
	requests  atomic.Uint64 // round trips attempted
	errors    atomic.Uint64 // transport failures and draining answers
	retries   atomic.Uint64 // round trips that were retries of another replica's failure
	ejections atomic.Uint64 // times the backend crossed the failure threshold
	restores  atomic.Uint64 // times a probe or late success brought it back
}

// newBackend builds a backend with a pool of conc clients, each with the
// given transport bounds so a hung peer costs bounded time.
func newBackend(addr string, conc int, dial, io time.Duration) *backend {
	b := &backend{addr: addr, pool: make(chan *server.Client, conc)}
	for i := 0; i < conc; i++ {
		c := server.Dial(addr)
		c.SetTransportTimeouts(dial, io)
		b.pool <- c
	}
	b.probe = server.Dial(addr)
	b.probe.SetTransportTimeouts(dial, io)
	return b
}

// healthy reports whether the backend is in rotation.
func (b *backend) healthy() bool { return !b.ejected.Load() }

// noteSuccess resets the failure streak and restores an ejected backend
// — normally the probe's doing, but a straggling in-flight request that
// succeeds after ejection counts too.
func (b *backend) noteSuccess() {
	b.consecFails.Store(0)
	if b.ejected.Swap(false) {
		b.restores.Add(1)
	}
}

// noteFailure records one transport failure and ejects the backend once
// the streak reaches threshold, reporting whether this call ejected it.
func (b *backend) noteFailure(threshold int) bool {
	n := b.consecFails.Add(1)
	if int(n) >= threshold && !b.ejected.Swap(true) {
		b.ejections.Add(1)
		return true
	}
	return false
}

// close drops every pooled connection and the probe's. Callers must have
// stopped traffic first (the pool drain blocks until all clients are
// back).
func (b *backend) close() {
	for i := 0; i < cap(b.pool); i++ {
		c := <-b.pool
		_ = c.Close()
	}
	_ = b.probe.Close()
}

// BackendStats is one backend's health and counter snapshot, exposed for
// the admin endpoint and the selftest's pruning assertions.
type BackendStats struct {
	Addr      string
	Ejected   bool
	Requests  uint64
	Errors    uint64
	Retries   uint64
	Ejections uint64
	Restores  uint64
}

// stats snapshots the backend.
func (b *backend) stats() BackendStats {
	return BackendStats{
		Addr:      b.addr,
		Ejected:   b.ejected.Load(),
		Requests:  b.requests.Load(),
		Errors:    b.errors.Load(),
		Retries:   b.retries.Load(),
		Ejections: b.ejections.Load(),
		Restores:  b.restores.Load(),
	}
}
