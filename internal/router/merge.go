package router

// This file merges per-shard responses into one client answer. Every
// merge is deterministic: concatenations follow shard-manifest order,
// the kNN merge orders by (distance, ID), and stats aggregation is a
// field-wise fold in shard order — the same topology always produces
// byte-identical responses for the same data and query.

import (
	"sort"

	"strtree/internal/server/wire"
)

// mergeResponses folds the per-shard responses (aligned with targets,
// which is in shard-manifest order) into the client's response. A shard
// failure wins over data: the first non-OK response in shard order is
// returned as-is, so errors are deterministic too.
func mergeResponses(req *wire.Request, results []*wire.Response, k int) *wire.Response {
	for _, r := range results {
		if r.Status != wire.StatusOK {
			return r
		}
	}
	out := &wire.Response{Status: wire.StatusOK, Op: req.Op}
	switch req.Op {
	case wire.OpSearch, wire.OpSearchPoint:
		for _, r := range results {
			out.Items = append(out.Items, r.Items...)
		}
	case wire.OpCount:
		for _, r := range results {
			out.Count += r.Count
		}
	case wire.OpNearest:
		lists := make([][]wire.Neighbor, len(results))
		for i, r := range results {
			lists[i] = r.Neighbors
		}
		out.Neighbors = mergeNeighbors(lists, k)
	case wire.OpBatch:
		out.Batch = make([][]wire.Item, len(req.Batch))
		for _, r := range results {
			for i, items := range r.Batch {
				if i < len(out.Batch) {
					out.Batch[i] = append(out.Batch[i], items...)
				}
			}
		}
	case wire.OpStats:
		stats := make([]wire.Stats, len(results))
		for i, r := range results {
			stats[i] = r.Stats
		}
		out.Stats = mergeStats(stats)
	}
	return out
}

// neighborLess is the kNN merge order: distance first, object ID as the
// tie-break, so equal-distance neighbors come out the same way no matter
// which shard held them.
func neighborLess(a, b wire.Neighbor) bool {
	//strlint:ignore floateq every shard computes distances from the same bytes; exact equality is the determinism contract
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Item.ID < b.Item.ID
}

// mergeNeighbors k-way-merges per-shard top-k lists into the global
// top-k by (distance, ID). Each input list is sorted into merge order
// first — backends return distance order, but ties within a shard need
// the ID tie-break too. Fewer than k total neighbors yields them all.
func mergeNeighbors(lists [][]wire.Neighbor, k int) []wire.Neighbor {
	for _, l := range lists {
		sort.Slice(l, func(i, j int) bool { return neighborLess(l[i], l[j]) })
	}
	heads := make([]int, len(lists))
	out := make([]wire.Neighbor, 0, k)
	for len(out) < k {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || neighborLess(l[heads[i]], lists[best][heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, lists[best][heads[best]])
		heads[best]++
	}
	return out
}

// mergeStats folds per-backend stats into a cluster view: counters and
// buffer figures sum, Draining is true if any backend drains, and
// latency digests merge with mergeSummary's semantics.
func mergeStats(stats []wire.Stats) wire.Stats {
	var out wire.Stats
	for _, s := range stats {
		out.InFlight += s.InFlight
		out.Accepted += s.Accepted
		out.Rejected += s.Rejected
		out.TimedOut += s.TimedOut
		out.Failed += s.Failed
		out.Completed += s.Completed
		out.Draining = out.Draining || s.Draining
		out.LogicalReads += s.LogicalReads
		out.DiskReads += s.DiskReads
		out.DiskWrites += s.DiskWrites
		out.Evictions += s.Evictions
		out.Latency = mergeSummary(out.Latency, s.Latency)
		for i := range out.PerOp {
			out.PerOp[i] = mergeSummary(out.PerOp[i], s.PerOp[i])
		}
	}
	return out
}

// mergeSummary combines two latency digests: counts sum, the mean is
// count-weighted, and Max is the true maximum. Quantiles of independent
// digests cannot be combined exactly, so P50/P95/P99 take the larger
// input — an upper bound, which is the conservative direction for an
// operator watching tail latency.
func mergeSummary(a, b wire.Summary) wire.Summary {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	out := wire.Summary{Count: a.Count + b.Count}
	out.Mean = uint64((float64(a.Mean)*float64(a.Count) + float64(b.Mean)*float64(b.Count)) / float64(out.Count))
	out.P50 = maxU64(a.P50, b.P50)
	out.P95 = maxU64(a.P95, b.P95)
	out.P99 = maxU64(a.P99, b.P99)
	out.Max = maxU64(a.Max, b.Max)
	return out
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
