package router

// This file is the router's admin endpoint, the same operational surface
// strserve exposes (-admin): Prometheus metrics, a JSON snapshot, a
// drain-aware health check, pprof. The router-specific series are the
// fan-out's vital signs: per-backend request/error/retry/ejection
// counters, the fan-out width distribution (how well the shard MBRs
// prune), and merge latency.

import (
	"io"
	"net/http"
	"net/http/pprof"

	"strtree/internal/obs"
)

// buildRegistry wires the router's counters into an obs.Registry. Every
// series is Func-backed: scrapes sample the live atomics the fan-out
// path maintains, never adding work to a request.
func (r *Router) buildRegistry() *obs.Registry {
	reg := obs.NewRegistry()

	// Front-side admission and outcomes.
	reg.GaugeFunc("strrouter_inflight_requests", "Client requests currently executing.",
		func() float64 { return float64(r.inFlight.Load()) })
	reg.CounterFunc("strrouter_accepted_total", "Client requests admitted past the admission semaphore.", r.accepted.Load)
	reg.CounterFunc("strrouter_rejected_total", "Client requests refused with StatusOverloaded.", r.rejected.Load)
	reg.CounterFunc("strrouter_completed_total", "Client requests answered with StatusOK.", r.completed.Load)
	reg.CounterFunc("strrouter_timedout_total", "Client requests that exceeded their deadline.", r.timedOut.Load)
	reg.CounterFunc("strrouter_failed_total", "Client requests answered with an internal error.", r.failed.Load)
	reg.CounterFunc("strrouter_unavailable_total", "Client requests refused because a needed shard had no healthy replica.", r.unavailable.Load)
	reg.CounterFunc("strrouter_retries_total", "Shard calls retried on another replica after a failure.", r.retriesTot.Load)
	reg.GaugeFunc("strrouter_draining", "1 while the router refuses new work (drain in progress), else 0.",
		func() float64 {
			if r.Draining() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("strrouter_ready", "1 while the health endpoint reports ready, else 0.",
		func() float64 {
			if r.Ready() {
				return 1
			}
			return 0
		})

	// Shape of the topology, for dashboards joining load to fleet size.
	reg.GaugeFunc("strrouter_shards", "Shards in the routing map.",
		func() float64 { return float64(len(r.m.Shards)) })
	reg.GaugeFunc("strrouter_backends", "Distinct backend addresses in the routing map.",
		func() float64 { return float64(len(r.backends)) })
	reg.GaugeFunc("strrouter_healthy_backends", "Backends currently in rotation.",
		func() float64 {
			n := 0
			for _, b := range r.backends {
				if b.healthy() {
					n++
				}
			}
			return float64(n)
		})

	// Per-backend traffic and health, labeled by address.
	for _, b := range r.backends {
		b := b
		l := obs.L("backend", b.addr)
		reg.CounterFunc("strrouter_backend_requests_total", "Round trips attempted, by backend.", b.requests.Load, l)
		reg.CounterFunc("strrouter_backend_errors_total", "Transport failures and draining answers, by backend.", b.errors.Load, l)
		reg.CounterFunc("strrouter_backend_retries_total", "Round trips that were retries of another replica's failure, by backend.", b.retries.Load, l)
		reg.CounterFunc("strrouter_backend_ejections_total", "Times the backend was ejected from rotation, by backend.", b.ejections.Load, l)
		reg.CounterFunc("strrouter_backend_restores_total", "Times the backend was restored to rotation, by backend.", b.restores.Load, l)
		reg.GaugeFunc("strrouter_backend_healthy", "1 while the backend is in rotation, else 0.",
			func() float64 {
				if b.healthy() {
					return 1
				}
				return 0
			}, l)
	}

	// Latency and fan-out distributions. Fan-out width is recorded as
	// whole "seconds" so the summary's second-valued quantiles read
	// directly in shards: a 3.0 quantile means 3 shards contacted.
	reg.HistogramFunc("strrouter_latency_seconds", "Client request latency through scatter, gather and merge.", &r.latAll)
	reg.HistogramFunc("strrouter_merge_seconds", "Merge-step latency alone.", &r.mergeLat)
	reg.HistogramFunc("strrouter_fanout_width_shards", "Shards contacted per request (unit: shards, not seconds).", &r.fanWidth)
	return reg
}

// Registry returns the router's metrics registry.
func (r *Router) Registry() *obs.Registry { return r.reg }

// AdminHandler returns the admin HTTP surface, mirroring strserve's:
//
//	/metrics        Prometheus text exposition (0.0.4)
//	/stats          the same series as JSON, wrapped in an object whose
//	                "percentiles" field is "upper-bound": any series this
//	                process derives by folding per-shard digests (the
//	                OpStats fan-out, mergeSummary) reports P50/P95/P99 as
//	                the max across shards — an upper bound, since exact
//	                quantiles of independent digests cannot be combined
//	/healthz        200 "ok" while ready; 503 "draining" once
//	                MarkNotReady or Shutdown has run
//	/debug/pprof/   the stdlib profiles
//
// Bind it to loopback or a trusted network; it stays functional during
// and after a drain.
func (r *Router) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.reg.WritePrometheus(w); err != nil {
			r.logf("strrouter: admin: write /metrics: %v", err)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// The wrapper names the fold semantics so dashboards cannot
		// mistake merged tail latencies for exact cluster quantiles:
		// mergeSummary combines per-shard digests by taking the larger
		// quantile, so every folded P50/P95/P99 is an upper bound.
		if _, err := io.WriteString(w, `{"percentiles":"upper-bound","families":`); err != nil {
			r.logf("strrouter: admin: write /stats: %v", err)
			return
		}
		if err := r.reg.WriteJSON(w); err != nil {
			r.logf("strrouter: admin: write /stats: %v", err)
			return
		}
		if _, err := io.WriteString(w, "}\n"); err != nil {
			r.logf("strrouter: admin: write /stats: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !r.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			if _, err := w.Write([]byte("draining\n")); err != nil {
				r.logf("strrouter: admin: write /healthz: %v", err)
			}
			return
		}
		if _, err := w.Write([]byte("ok\n")); err != nil {
			r.logf("strrouter: admin: write /healthz: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
