// Package router is strrouter's fan-out proxy: it speaks the strserve
// wire protocol on both sides, multiplying one query endpoint across a
// fleet of shard backends. The shard map (internal/router/shardmap) is
// the STR paper's tiling applied at dataset scale: because each shard's
// MBR is a tight STR slab, a window or point query fans out only to the
// shards it overlaps — the same pruning argument that makes an STR-packed
// node hierarchy cheap makes the fan-out narrow.
//
// The router is production-shaped, mirroring internal/server:
//
//   - admission control and per-request deadlines on the front;
//   - scatter-gather on the back over pooled protocol clients with
//     bounded per-backend concurrency and transport timeouts, so a hung
//     backend costs bounded time, never a parked goroutine;
//   - per-backend health: consecutive transport failures eject a backend
//     from rotation, a probe loop re-admits it when it answers again,
//     and idempotent reads get one retry on another replica;
//   - deterministic merges: concatenation in shard-manifest order, kNN
//     k-way merge by (distance, ID), field-wise stats aggregation;
//   - a shard with no healthy replica answers StatusUnavailable in-band
//     — fast, never a hang;
//   - observability (admin.go) and graceful drain, like the backends.
package router

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"strtree/internal/histo"
	"strtree/internal/obs"
	"strtree/internal/router/shardmap"
	"strtree/internal/server"
	"strtree/internal/server/wire"
)

// Config tunes a Router. Map is required; everything else has sane
// defaults.
type Config struct {
	// Map is the shard map: every shard must list at least one address.
	Map *shardmap.Map
	// MaxInFlight caps concurrently executing client requests — the
	// front-side admission semaphore. 0 means 64.
	MaxInFlight int
	// DefaultTimeout applies to requests carrying no deadline. 0 means 5s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines. 0 means 60s.
	MaxTimeout time.Duration
	// BackendConcurrency is each backend's client-pool size: the most
	// requests in flight to one backend at once. 0 means 4.
	BackendConcurrency int
	// FailureThreshold is the consecutive transport failures that eject a
	// backend from rotation. 0 means 3.
	FailureThreshold int
	// ProbeInterval is how often ejected backends are re-probed. 0 means 2s.
	ProbeInterval time.Duration
	// DialTimeout caps backend connection establishment. 0 means 2s.
	DialTimeout time.Duration
	// IOTimeout caps one backend round trip's socket reads and writes.
	// 0 means MaxTimeout plus five seconds, so the transport guard sits
	// safely above any in-band deadline.
	IOTimeout time.Duration
	// Logf, when non-nil, receives one line per router-side failure.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.BackendConcurrency <= 0 {
		c.BackendConcurrency = 4
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = c.MaxTimeout + 5*time.Second
	}
	return c
}

// Router fans client requests out to shard backends and merges the
// answers. Create with New, run with Serve, stop with Shutdown. All
// exported methods are safe for concurrent use.
type Router struct {
	cfg Config
	m   *shardmap.Map

	// replicas[shard] lists the shard's backends in address order of the
	// manifest (first preferred); backends is the same set deduplicated
	// by address, in first-appearance order, for probing and stats.
	replicas [][]*backend
	backends []*backend

	// sem is the front-side admission semaphore.
	sem chan struct{}

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener          // guarded by mu
	conns    map[net.Conn]struct{} // guarded by mu
	draining bool                  // guarded by mu

	reqWG     sync.WaitGroup // admitted requests (through response write)
	connWG    sync.WaitGroup // connection handler goroutines
	scatterWG sync.WaitGroup // scatter goroutines (may outlive their request)
	probeDone chan struct{}  // closed when the probe loop exits

	inFlight    atomic.Int64
	accepted    atomic.Uint64
	rejected    atomic.Uint64
	completed   atomic.Uint64
	timedOut    atomic.Uint64
	failed      atomic.Uint64
	unavailable atomic.Uint64
	retriesTot  atomic.Uint64

	notReady atomic.Bool

	latAll   histo.Histogram // front-side request latency
	mergeLat histo.Histogram // merge step alone
	// fanWidth records each request's fan-out width (shards contacted),
	// encoded as whole seconds so the exposition's second-valued summary
	// reads directly in shards: a 3.0 quantile means 3 shards.
	fanWidth histo.Histogram

	reg *obs.Registry
}

// New builds a router over a validated shard map. Every shard must carry
// at least one backend address.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if cfg.Map == nil {
		return nil, errors.New("router: no shard map")
	}
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	//strlint:ignore ctxprop the router owns its lifecycle root context; Shutdown cancels it
	ctx, cancel := context.WithCancel(context.Background())
	r := &Router{
		cfg:        cfg,
		m:          cfg.Map,
		sem:        make(chan struct{}, cfg.MaxInFlight),
		baseCtx:    ctx,
		cancelBase: cancel,
		conns:      map[net.Conn]struct{}{},
		probeDone:  make(chan struct{}),
	}
	byAddr := map[string]*backend{}
	r.replicas = make([][]*backend, len(r.m.Shards))
	for i, s := range r.m.Shards {
		if len(s.Addrs) == 0 {
			cancel()
			return nil, fmt.Errorf("router: shard %d has no backend address", i)
		}
		for _, addr := range s.Addrs {
			b, ok := byAddr[addr]
			if !ok {
				b = newBackend(addr, cfg.BackendConcurrency, cfg.DialTimeout, cfg.IOTimeout)
				byAddr[addr] = b
				r.backends = append(r.backends, b)
			}
			r.replicas[i] = append(r.replicas[i], b)
		}
	}
	r.reg = r.buildRegistry()
	//strlint:ignore waitpair probeLoop closes r.probeDone on exit; Shutdown waits on it
	go r.probeLoop()
	return r, nil
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// probeLoop periodically re-probes ejected backends with a stats ping
// and restores the ones that answer. It exits when Shutdown cancels the
// router's base context.
func (r *Router) probeLoop() {
	defer close(r.probeDone)
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.baseCtx.Done():
			return
		case <-t.C:
		}
		for _, b := range r.backends {
			if b.healthy() {
				continue
			}
			probeMs := uint32(r.cfg.DialTimeout / time.Millisecond)
			if probeMs == 0 {
				probeMs = 1
			}
			resp, err := b.probe.Do(&wire.Request{Op: wire.OpStats, TimeoutMillis: probeMs})
			if err != nil || resp.Status != wire.StatusOK {
				continue
			}
			b.noteSuccess()
			r.logf("strrouter: backend %s restored", b.addr)
		}
	}
}

// ErrAlreadyServing is returned by a second Serve call.
var ErrAlreadyServing = errors.New("router: already serving")

// Serve accepts client connections on ln until Shutdown. It blocks,
// returning nil after a drain-initiated stop or the first fatal accept
// error otherwise. The router takes ownership of ln.
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.ln != nil {
		r.mu.Unlock()
		return ErrAlreadyServing
	}
	if r.draining {
		r.mu.Unlock()
		_ = ln.Close()
		return nil
	}
	r.ln = ln
	r.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if r.Draining() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			r.logf("strrouter: accept: %v", err)
			return err
		}
		r.mu.Lock()
		if r.draining {
			r.mu.Unlock()
			_ = conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.connWG.Add(1)
		r.mu.Unlock()
		go r.handleConn(conn)
	}
}

// Addr returns the listener's address, or nil before Serve.
func (r *Router) Addr() net.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ln == nil {
		return nil
	}
	return r.ln.Addr()
}

// Draining reports whether Shutdown has begun.
func (r *Router) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// MarkNotReady flips the admin /healthz endpoint to 503 without starting
// the drain, mirroring the backend server's readiness sequence.
func (r *Router) MarkNotReady() { r.notReady.Store(true) }

// Ready reports whether the admin health endpoint should answer 200.
func (r *Router) Ready() bool { return !r.notReady.Load() && !r.Draining() }

// BackendStats snapshots every backend's health and counters, in the
// manifest's first-appearance address order.
func (r *Router) BackendStats() []BackendStats {
	out := make([]BackendStats, len(r.backends))
	for i, b := range r.backends {
		out[i] = b.stats()
	}
	return out
}

// handleConn serves one client connection, frames answered in order.
func (r *Router) handleConn(conn net.Conn) {
	defer func() {
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
		_ = conn.Close()
		r.connWG.Done()
	}()
	h := server.NewConnIO(conn)
	var inBuf []byte
	for {
		payload, err := h.ReadFrame(inBuf)
		if err != nil {
			return
		}
		inBuf = payload
		if !r.serveOne(h, payload) {
			return
		}
	}
}

// serveOne parses, admits, fans out and answers one request, returning
// whether the connection should stay open.
func (r *Router) serveOne(h *server.ConnIO, payload []byte) bool {
	req, err := wire.ParseRequest(payload)
	if err != nil {
		_ = h.WriteResponse(&wire.Response{
			Status: wire.StatusBadRequest,
			Op:     wire.OpSearch,
			Err:    err.Error(),
		})
		return false
	}
	if req.Op == wire.OpInsert || req.Op == wire.OpDelete {
		// The router serves the read path only: a mutation would have to
		// pick (and possibly re-balance) a shard, which the static shard
		// map cannot express. Mutate the owning strserve directly.
		return h.WriteResponse(&wire.Response{
			Status: wire.StatusBadRequest,
			Op:     req.Op,
			Err:    "router is read-only: send mutations to a backend server directly",
		})
	}
	if err := r.checkDims(req); err != nil {
		// Wrong dimensionality is a client error the backends would each
		// reject; answer once here and keep the connection (the frame
		// itself was well-formed).
		return h.WriteResponse(&wire.Response{
			Status: wire.StatusBadRequest,
			Op:     req.Op,
			Err:    err.Error(),
		})
	}

	release, status := r.admit()
	if status != wire.StatusOK {
		ok := h.WriteResponse(&wire.Response{Status: status, Op: req.Op, Err: status.String()})
		return ok && status == wire.StatusOverloaded
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.baseCtx, r.timeoutFor(req))
	start := time.Now()
	resp := r.fanout(ctx, req)
	cancel()
	r.latAll.Observe(time.Since(start))

	switch resp.Status {
	case wire.StatusOK:
		r.completed.Add(1)
	case wire.StatusDeadline:
		r.timedOut.Add(1)
	case wire.StatusUnavailable:
		r.unavailable.Add(1)
	default:
		r.failed.Add(1)
		r.logf("strrouter: %v request failed: %s", req.Op, resp.Err)
	}
	return h.WriteResponse(resp)
}

// checkDims rejects geometry whose dimensionality does not match the
// shard map's before any backend sees it.
func (r *Router) checkDims(req *wire.Request) error {
	bad := func(d int) error {
		return fmt.Errorf("router: %d-d geometry against a %d-d shard map", d, r.m.Dims)
	}
	switch req.Op {
	case wire.OpSearch, wire.OpCount:
		if req.Query.Dim() != r.m.Dims {
			return bad(req.Query.Dim())
		}
	case wire.OpSearchPoint, wire.OpNearest:
		if len(req.Point) != r.m.Dims {
			return bad(len(req.Point))
		}
	case wire.OpBatch:
		for _, q := range req.Batch {
			if q.Dim() != r.m.Dims {
				return bad(q.Dim())
			}
		}
	}
	return nil
}

// admit applies front-side admission control, mirroring the backend
// server's semantics.
func (r *Router) admit() (release func(), status wire.Status) {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return nil, wire.StatusDraining
	}
	select {
	case r.sem <- struct{}{}:
		r.reqWG.Add(1)
		r.mu.Unlock()
		r.inFlight.Add(1)
		r.accepted.Add(1)
		return func() {
			<-r.sem
			r.inFlight.Add(-1)
			r.reqWG.Done()
		}, wire.StatusOK
	default:
		r.mu.Unlock()
		r.rejected.Add(1)
		return nil, wire.StatusOverloaded
	}
}

// timeoutFor resolves a request's deadline: its own if set, else the
// default, never above the maximum.
func (r *Router) timeoutFor(req *wire.Request) time.Duration {
	d := r.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		d = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if d > r.cfg.MaxTimeout {
		d = r.cfg.MaxTimeout
	}
	return d
}

// targetsFor prunes the fan-out: the shards a request must visit, in
// manifest order. Window and count queries visit shards overlapping the
// window, point queries shards containing the point, batches the union
// of their windows' overlaps; nearest-neighbor and stats broadcast
// (distance to the true k-th neighbor is unknowable in advance).
func (r *Router) targetsFor(req *wire.Request) []int {
	switch req.Op {
	case wire.OpSearch, wire.OpCount:
		return r.m.OverlapRect(req.Query)
	case wire.OpSearchPoint:
		return r.m.OverlapPoint(req.Point)
	case wire.OpBatch:
		out := make([]int, 0, len(r.m.Shards))
		for _, id := range r.m.All() {
			mbr := r.m.Shards[id].MBR.Rect()
			for _, q := range req.Batch {
				if mbr.Intersects(q) {
					out = append(out, id)
					break
				}
			}
		}
		return out
	default: // OpNearest, OpStats
		return r.m.All()
	}
}

// fanout scatters one admitted request to its target shards, gathers,
// and merges. The gather respects ctx: a deadline that expires with
// shard calls still in flight answers StatusDeadline immediately while
// the stragglers unwind on their own transport bounds.
func (r *Router) fanout(ctx context.Context, req *wire.Request) *wire.Response {
	targets := r.targetsFor(req)
	r.fanWidth.Observe(time.Duration(len(targets)) * time.Second)
	if len(targets) == 0 {
		// Nothing overlaps: the answer is trivially empty.
		return emptyResponse(req)
	}

	// Propagate the remaining budget to the backends in-band, so their
	// own deadline enforcement lines up with ours.
	sub := *req
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl) / time.Millisecond
		if ms < 1 {
			ms = 1
		}
		sub.TimeoutMillis = uint32(ms)
	}

	results := make([]*wire.Response, len(targets))
	done := make(chan struct{}, len(targets))
	for i, sid := range targets {
		r.scatterWG.Add(1)
		go func(i, sid int) {
			defer r.scatterWG.Done()
			results[i] = r.shardCall(ctx, sid, sub)
			done <- struct{}{}
		}(i, sid)
	}
	for range targets {
		select {
		case <-done:
		case <-ctx.Done():
			return &wire.Response{Status: wire.StatusDeadline, Op: req.Op, Err: ctx.Err().Error()}
		}
	}

	t0 := time.Now()
	resp := mergeResponses(req, results, int(req.K))
	r.mergeLat.Observe(time.Since(t0))
	return resp
}

// emptyResponse is the answer when no shard overlaps the query.
func emptyResponse(req *wire.Request) *wire.Response {
	resp := &wire.Response{Status: wire.StatusOK, Op: req.Op}
	if req.Op == wire.OpBatch {
		resp.Batch = make([][]wire.Item, len(req.Batch))
	}
	return resp
}

// shardCall executes one shard's part of a request: the first healthy
// replica, with one retry on the next healthy replica after a transport
// failure or draining answer (every protocol op is an idempotent read,
// so the retry is always safe). No healthy replica left means an in-band
// StatusUnavailable — fast-fail, never a hang.
func (r *Router) shardCall(ctx context.Context, shardID int, req wire.Request) *wire.Response {
	attempts := 0
	for _, b := range r.replicas[shardID] {
		if !b.healthy() {
			continue
		}
		if attempts > 0 {
			b.retries.Add(1)
			r.retriesTot.Add(1)
		}
		resp, retryable := r.tryBackend(ctx, b, &req)
		if resp != nil {
			return resp
		}
		if !retryable {
			break
		}
		attempts++
		if attempts > 1 {
			break // one retry only
		}
	}
	return &wire.Response{
		Status: wire.StatusUnavailable,
		Op:     req.Op,
		Err:    fmt.Sprintf("shard %d: no healthy replica", shardID),
	}
}

// tryBackend runs one round trip against one backend. It returns a
// response to forward, or nil with retryable=true when the attempt
// failed in a way another replica might answer (transport failure,
// draining backend). A deadline expiring while waiting for a pool slot
// returns the deadline response directly.
func (r *Router) tryBackend(ctx context.Context, b *backend, req *wire.Request) (resp *wire.Response, retryable bool) {
	var cl *server.Client
	select {
	case cl = <-b.pool:
	case <-ctx.Done():
		return &wire.Response{Status: wire.StatusDeadline, Op: req.Op, Err: ctx.Err().Error()}, false
	}
	b.requests.Add(1)
	out, err := cl.Do(req)
	b.pool <- cl
	if err != nil {
		b.errors.Add(1)
		if b.noteFailure(r.cfg.FailureThreshold) {
			r.logf("strrouter: backend %s ejected after %d consecutive failures: %v",
				b.addr, r.cfg.FailureThreshold, err)
		}
		return nil, true
	}
	if out.Status == wire.StatusDraining {
		// A draining backend is going away on purpose; treat like a
		// transport failure so traffic shifts to replicas and the probe
		// loop notices when (if) it returns.
		b.errors.Add(1)
		if b.noteFailure(r.cfg.FailureThreshold) {
			r.logf("strrouter: backend %s ejected: draining", b.addr)
		}
		return nil, true
	}
	// Any other in-band answer — OK or a refusal — proves the backend
	// alive and is the shard's answer.
	b.noteSuccess()
	return out, false
}

// Shutdown drains the router: it stops accepting connections, refuses
// new requests with StatusDraining, waits for in-flight requests to
// finish writing their responses, stops the probe loop, then closes
// every connection and backend client. If ctx expires first, outstanding
// fan-outs are cancelled and ctx's error is returned.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return errors.New("router: already shut down")
	}
	r.draining = true
	ln := r.ln
	r.mu.Unlock()
	r.notReady.Store(true)

	if ln != nil {
		_ = ln.Close()
	}

	done := make(chan struct{})
	go func() {
		r.reqWG.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
		r.cancelBase()
		select {
		case <-done:
		case <-time.After(time.Second):
			r.logf("strrouter: drain deadline passed with requests still running")
		}
	}

	r.mu.Lock()
	for c := range r.conns {
		_ = c.Close()
	}
	r.mu.Unlock()

	if drainErr == nil {
		r.connWG.Wait()
	} else {
		handlers := make(chan struct{})
		go func() {
			r.connWG.Wait()
			close(handlers)
		}()
		select {
		case <-handlers:
		case <-time.After(time.Second):
			r.logf("strrouter: handlers still running after forced drain")
		}
	}
	r.cancelBase()
	<-r.probeDone

	// Scatter goroutines outliving their request (a deadline answered
	// early) are bounded by the transport timeouts; wait them out so the
	// backend pools are quiescent before closing their connections.
	scatter := make(chan struct{})
	go func() {
		r.scatterWG.Wait()
		close(scatter)
	}()
	select {
	case <-scatter:
		for _, b := range r.backends {
			b.close()
		}
	case <-time.After(5 * time.Second):
		r.logf("strrouter: scatter goroutines still running; leaving backend connections to the OS")
	}
	return drainErr
}
