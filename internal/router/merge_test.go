package router

import (
	"reflect"
	"testing"

	"strtree/internal/geom"
	"strtree/internal/server/wire"
)

func nb(id uint64, dist float64) wire.Neighbor {
	return wire.Neighbor{Item: wire.Item{ID: id}, Dist: dist}
}

// TestMergeNeighbors is the kNN k-way merge table: ties on distance must
// break by ID, and k may be smaller or larger than any per-shard list.
func TestMergeNeighbors(t *testing.T) {
	cases := []struct {
		name  string
		lists [][]wire.Neighbor
		k     int
		want  []wire.Neighbor
	}{
		{
			name:  "disjoint distances interleave",
			lists: [][]wire.Neighbor{{nb(1, 0.1), nb(3, 0.5)}, {nb(2, 0.3), nb(4, 0.7)}},
			k:     4,
			want:  []wire.Neighbor{nb(1, 0.1), nb(2, 0.3), nb(3, 0.5), nb(4, 0.7)},
		},
		{
			name:  "tie on distance breaks by ID across shards",
			lists: [][]wire.Neighbor{{nb(9, 0.2)}, {nb(3, 0.2)}, {nb(7, 0.2)}},
			k:     3,
			want:  []wire.Neighbor{nb(3, 0.2), nb(7, 0.2), nb(9, 0.2)},
		},
		{
			name:  "tie on distance breaks by ID within one shard",
			lists: [][]wire.Neighbor{{nb(8, 0.4), nb(2, 0.4), nb(5, 0.4)}},
			k:     3,
			want:  []wire.Neighbor{nb(2, 0.4), nb(5, 0.4), nb(8, 0.4)},
		},
		{
			name:  "k smaller than per-shard results truncates globally",
			lists: [][]wire.Neighbor{{nb(1, 0.1), nb(4, 0.4), nb(5, 0.5)}, {nb(2, 0.2), nb(3, 0.3), nb(6, 0.6)}},
			k:     2,
			want:  []wire.Neighbor{nb(1, 0.1), nb(2, 0.2)},
		},
		{
			name:  "k larger than total yields everything",
			lists: [][]wire.Neighbor{{nb(1, 0.1)}, {nb(2, 0.2)}},
			k:     10,
			want:  []wire.Neighbor{nb(1, 0.1), nb(2, 0.2)},
		},
		{
			name:  "empty shard lists are skipped",
			lists: [][]wire.Neighbor{nil, {nb(2, 0.2)}, {}},
			k:     3,
			want:  []wire.Neighbor{nb(2, 0.2)},
		},
		{
			name:  "all empty",
			lists: [][]wire.Neighbor{nil, nil},
			k:     3,
			want:  []wire.Neighbor{},
		},
		{
			name: "mixed ties and distinct distances",
			lists: [][]wire.Neighbor{
				{nb(10, 0.1), nb(11, 0.3)},
				{nb(2, 0.3), nb(12, 0.9)},
				{nb(1, 0.3)},
			},
			k:    4,
			want: []wire.Neighbor{nb(10, 0.1), nb(1, 0.3), nb(2, 0.3), nb(11, 0.3)},
		},
	}
	for _, tc := range cases {
		got := mergeNeighbors(tc.lists, tc.k)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMergeNeighborsSortsUnsortedInput verifies the defensive re-sort: a
// backend list arriving out of merge order still merges correctly.
func TestMergeNeighborsSortsUnsortedInput(t *testing.T) {
	lists := [][]wire.Neighbor{{nb(5, 0.5), nb(1, 0.1)}}
	want := []wire.Neighbor{nb(1, 0.1), nb(5, 0.5)}
	if got := mergeNeighbors(lists, 2); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMergeResponsesErrorWins(t *testing.T) {
	req := &wire.Request{Op: wire.OpCount}
	results := []*wire.Response{
		{Status: wire.StatusOK, Op: wire.OpCount, Count: 3},
		{Status: wire.StatusUnavailable, Op: wire.OpCount, Err: "shard 1: no healthy replica"},
		{Status: wire.StatusDeadline, Op: wire.OpCount},
	}
	got := mergeResponses(req, results, 0)
	if got.Status != wire.StatusUnavailable {
		t.Fatalf("status = %v, want the first non-OK in shard order (unavailable)", got.Status)
	}
}

func TestMergeResponsesConcatAndSum(t *testing.T) {
	req := &wire.Request{Op: wire.OpSearch}
	results := []*wire.Response{
		{Status: wire.StatusOK, Op: wire.OpSearch, Items: []wire.Item{{ID: 5}, {ID: 1}}},
		{Status: wire.StatusOK, Op: wire.OpSearch, Items: []wire.Item{{ID: 9}}},
	}
	got := mergeResponses(req, results, 0)
	want := []uint64{5, 1, 9} // shard-manifest order, within-shard order preserved
	if len(got.Items) != len(want) {
		t.Fatalf("items = %v", got.Items)
	}
	for i, id := range want {
		if got.Items[i].ID != id {
			t.Fatalf("items[%d].ID = %d, want %d (concatenation must follow shard order)", i, got.Items[i].ID, id)
		}
	}

	creq := &wire.Request{Op: wire.OpCount}
	cres := []*wire.Response{
		{Status: wire.StatusOK, Op: wire.OpCount, Count: 2},
		{Status: wire.StatusOK, Op: wire.OpCount, Count: 40},
	}
	if got := mergeResponses(creq, cres, 0); got.Count != 42 {
		t.Fatalf("count = %d, want 42", got.Count)
	}
}

func TestMergeResponsesBatch(t *testing.T) {
	req := &wire.Request{Op: wire.OpBatch, Batch: make([]geom.Rect, 2)}
	results := []*wire.Response{
		{Status: wire.StatusOK, Op: wire.OpBatch, Batch: [][]wire.Item{{{ID: 1}}, nil}},
		{Status: wire.StatusOK, Op: wire.OpBatch, Batch: [][]wire.Item{{{ID: 2}}, {{ID: 3}}}},
	}
	got := mergeResponses(req, results, 0)
	if len(got.Batch) != 2 {
		t.Fatalf("batch len = %d", len(got.Batch))
	}
	if len(got.Batch[0]) != 2 || got.Batch[0][0].ID != 1 || got.Batch[0][1].ID != 2 {
		t.Fatalf("batch[0] = %v, want shard-order concat [1 2]", got.Batch[0])
	}
	if len(got.Batch[1]) != 1 || got.Batch[1][0].ID != 3 {
		t.Fatalf("batch[1] = %v, want [3]", got.Batch[1])
	}
}

func TestMergeStats(t *testing.T) {
	a := wire.Stats{Accepted: 2, Completed: 2, LogicalReads: 10,
		Latency: wire.Summary{Count: 2, Mean: 100, P99: 200, Max: 300}}
	b := wire.Stats{Accepted: 4, Completed: 3, LogicalReads: 5, Draining: true,
		Latency: wire.Summary{Count: 6, Mean: 200, P99: 500, Max: 250}}
	got := mergeStats([]wire.Stats{a, b})
	if got.Accepted != 6 || got.Completed != 5 || got.LogicalReads != 15 || !got.Draining {
		t.Fatalf("counter fold wrong: %+v", got)
	}
	if got.Latency.Count != 8 {
		t.Fatalf("latency count = %d, want 8", got.Latency.Count)
	}
	if got.Latency.Mean != 175 { // (2*100 + 6*200) / 8
		t.Fatalf("weighted mean = %d, want 175", got.Latency.Mean)
	}
	if got.Latency.P99 != 500 || got.Latency.Max != 300 {
		t.Fatalf("tail fold wrong: %+v", got.Latency)
	}
}

// TestMergeSummaryUpperBoundFold pins the quantile fold semantics the
// admin surface advertises ("percentiles":"upper-bound" on /stats):
// every folded quantile is the max across inputs — never an average,
// never a count-weighted blend — while Count sums, Mean is
// count-weighted, and Max is the true maximum. If the fold ever changes,
// this test and the /stats wrapper must change together.
func TestMergeSummaryUpperBoundFold(t *testing.T) {
	a := wire.Summary{Count: 10, Mean: 100, P50: 90, P95: 400, P99: 900, Max: 1000}
	b := wire.Summary{Count: 30, Mean: 20, P50: 110, P95: 300, P99: 950, Max: 980}
	got := mergeSummary(a, b)
	if got.Count != 40 {
		t.Fatalf("Count = %d, want 40", got.Count)
	}
	if got.Mean != 40 { // (10*100 + 30*20) / 40
		t.Fatalf("Mean = %d, want count-weighted 40", got.Mean)
	}
	// Each quantile takes the larger input independently: P50 from b,
	// P95 from a, P99 from b. The result over-reports whenever the true
	// combined quantile sits below the larger shard's — the conservative
	// direction for an operator watching tails.
	if got.P50 != 110 || got.P95 != 400 || got.P99 != 950 {
		t.Fatalf("quantile fold = {P50:%d P95:%d P99:%d}, want upper bounds {110 400 950}", got.P50, got.P95, got.P99)
	}
	if got.Max != 1000 {
		t.Fatalf("Max = %d, want true maximum 1000", got.Max)
	}

	// A zero-count digest is the fold's identity in either position: the
	// other digest passes through untouched, quantiles included.
	if got := mergeSummary(wire.Summary{}, a); got != a {
		t.Fatalf("identity fold (left) = %+v, want %+v", got, a)
	}
	if got := mergeSummary(a, wire.Summary{}); got != a {
		t.Fatalf("identity fold (right) = %+v, want %+v", got, a)
	}
}
