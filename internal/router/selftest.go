package router

// Selftest is the router's in-process proof: it builds one dataset, packs
// it twice — once into a single unsharded tree, once STR-partitioned
// across N in-process strserve backends behind a router — and asserts
// three properties end to end:
//
//  1. Identity: through the router, every query op answers exactly what
//     the unsharded tree answers (searches compared as ID sets, kNN as
//     (distance, ID) sequences, counts exactly).
//  2. Pruning: per-backend request counters match the shard-MBR overlap
//     prediction — narrow queries really do skip non-overlapping shards.
//  3. Failure: killing one backend makes queries needing its shard answer
//     StatusUnavailable within the deadline (never a hang), the backend's
//     ejection shows up in the router's counters, and the rest of the
//     dataset keeps answering.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"strtree"
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/router/shardmap"
	"strtree/internal/server"
	"strtree/internal/server/wire"
)

// SelftestConfig tunes the in-process topology behind
// `strrouter -selftest`.
type SelftestConfig struct {
	// Shards is the backend count; 0 means 3.
	Shards int
	// Size is the dataset's item count; 0 means 6000.
	Size int
	// Queries is the number of window/point/kNN probes; 0 means 60.
	Queries int
	// Seed fixes data and workload generation.
	Seed int64
	// AdminAddr, when non-empty, binds the router's admin endpoint there
	// and extends the selftest into an admin smoke test: /healthz must
	// answer 200, /metrics must expose per-backend series, and the
	// ejection counter must turn non-zero after the kill.
	AdminAddr string
}

func (c SelftestConfig) withDefaults() SelftestConfig {
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Size <= 0 {
		c.Size = 6000
	}
	if c.Queries <= 0 {
		c.Queries = 60
	}
	return c
}

// selftestItems generates n uniformly placed squares in the unit square
// sized for ~5% total coverage — the same UNIFORM shape the server
// selftest uses, regenerated here because continuous coordinates make
// distance ties (the one source of kNN merge ambiguity) measure zero.
func selftestItems(n int, seed int64) []strtree.Item {
	rng := rand.New(rand.NewSource(seed))
	side := 0.0
	if n > 0 {
		side = math.Sqrt(0.05 / float64(n))
	}
	items := make([]strtree.Item, n)
	for i := range items {
		x := rng.Float64() * (1 - side)
		y := rng.Float64() * (1 - side)
		items[i] = strtree.Item{
			Rect: geom.Rect{Min: geom.Pt2(x, y), Max: geom.Pt2(x+side, y+side)},
			ID:   uint64(i),
		}
	}
	return items
}

// partitionItems runs the STR shard partition over public items, the
// same entry conversion strload's -shards path performs.
func partitionItems(items []strtree.Item, shards int) (*shardmap.Map, [][]node.Entry, error) {
	entries := make([]node.Entry, len(items))
	for i, it := range items {
		entries[i] = node.Entry{Rect: it.Rect, Ref: uint64(i)}
	}
	return shardmap.Partition(entries, shards, 0)
}

// selftestTopology is the in-process cluster the selftest drives.
type selftestTopology struct {
	m        *shardmap.Map
	backends []*server.Server
	trees    []*strtree.Tree
	router   *Router
	client   *server.Client
	addr     string
}

// buildTopology partitions items across cfg.Shards in-process strserve
// backends on loopback listeners and fronts them with a router.
func buildTopology(items []strtree.Item, shards int, logf func(string, ...any)) (*selftestTopology, error) {
	m, parts, err := partitionItems(items, shards)
	if err != nil {
		return nil, err
	}
	t := &selftestTopology{m: m}
	for i, part := range parts {
		sub := make([]strtree.Item, len(part))
		for j, e := range part {
			sub[j] = items[e.Ref]
		}
		tree, err := strtree.New(strtree.Options{BufferPages: 128})
		if err != nil {
			t.close()
			return nil, err
		}
		t.trees = append(t.trees, tree)
		if err := tree.BulkLoad(sub, strtree.PackSTR); err != nil {
			t.close()
			return nil, err
		}
		srv := server.New(tree, server.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.close()
			return nil, err
		}
		//strlint:ignore waitpair Shutdown signals completion by unblocking Serve; the exit error is advisory here
		go func() { _ = srv.Serve(ln) }()
		t.backends = append(t.backends, srv)
		m.Shards[i].Addrs = []string{ln.Addr().String()}
	}
	rt, err := New(Config{
		Map: m,
		// Aggressive health knobs so the kill sequence converges inside a
		// test budget: one failure ejects, probes every 200ms.
		FailureThreshold: 1,
		ProbeInterval:    200 * time.Millisecond,
		DialTimeout:      time.Second,
		IOTimeout:        5 * time.Second,
		Logf:             logf,
	})
	if err != nil {
		t.close()
		return nil, err
	}
	t.router = rt
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.close()
		return nil, err
	}
	//strlint:ignore waitpair Shutdown signals completion by unblocking Serve; the exit error is advisory here
	go func() { _ = rt.Serve(ln) }()
	t.addr = ln.Addr().String()
	t.client = server.Dial(t.addr)
	return t, nil
}

// close tears the topology down, tolerating partially built state.
func (t *selftestTopology) close() {
	if t.client != nil {
		_ = t.client.Close()
	}
	//strlint:ignore ctxprop teardown of a self-contained harness; the drain deadline is the root
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if t.router != nil {
		_ = t.router.Shutdown(ctx)
	}
	for _, b := range t.backends {
		_ = b.Shutdown(ctx)
	}
	for _, tr := range t.trees {
		_ = tr.Close()
	}
}

// itemIDs canonicalizes a search result for comparison: sorted object
// IDs (rectangles are determined by the ID; order differs legitimately
// between tree traversal and shard concatenation).
func itemIDs(items []wire.Item) []uint64 {
	ids := make([]uint64, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Selftest runs the identity, pruning and failure proofs, writing a
// report to w. Any divergence fails it.
func Selftest(w io.Writer, cfg SelftestConfig) error {
	cfg = cfg.withDefaults()
	items := selftestItems(cfg.Size, cfg.Seed)

	// The unsharded reference: one tree with everything.
	ref, err := strtree.New(strtree.Options{BufferPages: 256})
	if err != nil {
		return err
	}
	defer func() { _ = ref.Close() }()
	if err := ref.BulkLoad(items, strtree.PackSTR); err != nil {
		return err
	}

	topo, err := buildTopology(items, cfg.Shards, nil)
	if err != nil {
		return err
	}
	defer topo.close()

	var adminURL string
	var adminShutdown func()
	if cfg.AdminAddr != "" {
		ln, err := net.Listen("tcp", cfg.AdminAddr)
		if err != nil {
			return fmt.Errorf("selftest: admin listen: %w", err)
		}
		adminSrv := &http.Server{Handler: topo.router.AdminHandler()}
		adminDone := make(chan struct{})
		go func() {
			defer close(adminDone)
			_ = adminSrv.Serve(ln) // returns http.ErrServerClosed on Close
		}()
		adminShutdown = func() {
			_ = adminSrv.Close()
			<-adminDone
		}
		defer adminShutdown()
		adminURL = "http://" + ln.Addr().String()
	}

	// ------------------------------------------------ identity + pruning
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	expected := make([]uint64, len(topo.router.backends)) // predicted per-backend requests
	narrow := 0                                           // queries that skipped at least one shard
	cl := topo.client
	for q := 0; q < cfg.Queries; q++ {
		// A 1%-area window somewhere in the unit square.
		const ext = 0.1
		x := rng.Float64() * (1 - ext)
		y := rng.Float64() * (1 - ext)
		win := geom.R2(x, y, x+ext, y+ext)
		pt := geom.Pt2(rng.Float64(), rng.Float64())
		k := 1 + rng.Intn(10)

		// Predict the fan-out from the shard map, as the router will.
		hit := topo.m.OverlapRect(win)
		for _, id := range hit {
			expected[id] += 2 // search + count below
		}
		if len(hit) < cfg.Shards {
			narrow++
		}
		for _, id := range topo.m.OverlapPoint(pt) {
			expected[id]++
		}
		for _, id := range topo.m.All() {
			expected[id]++ // nearest broadcasts
		}

		// OpSearch
		got, err := cl.Search(win)
		if err != nil {
			return fmt.Errorf("selftest: search %d: %w", q, err)
		}
		var want []wire.Item
		if err := ref.Search(win, func(it strtree.Item) bool {
			want = append(want, wire.Item{Rect: it.Rect, ID: it.ID})
			return true
		}); err != nil {
			return fmt.Errorf("selftest: reference search %d: %w", q, err)
		}
		if !sameIDs(itemIDs(got), itemIDs(want)) {
			return fmt.Errorf("selftest: search %d: sharded %d items, unsharded %d items or IDs differ", q, len(got), len(want))
		}

		// OpCount
		n, err := cl.Count(win)
		if err != nil {
			return fmt.Errorf("selftest: count %d: %w", q, err)
		}
		if n != uint64(len(want)) {
			return fmt.Errorf("selftest: count %d: sharded %d, unsharded %d", q, n, len(want))
		}

		// OpSearchPoint
		gotPt, err := cl.SearchPoint(pt)
		if err != nil {
			return fmt.Errorf("selftest: searchpoint %d: %w", q, err)
		}
		var wantPt []wire.Item
		if err := ref.SearchPoint(pt, func(it strtree.Item) bool {
			wantPt = append(wantPt, wire.Item{Rect: it.Rect, ID: it.ID})
			return true
		}); err != nil {
			return fmt.Errorf("selftest: reference searchpoint %d: %w", q, err)
		}
		if !sameIDs(itemIDs(gotPt), itemIDs(wantPt)) {
			return fmt.Errorf("selftest: searchpoint %d: results differ", q)
		}

		// OpNearest: exact sequence match on (distance, ID).
		gotNb, err := cl.Nearest(pt, k)
		if err != nil {
			return fmt.Errorf("selftest: nearest %d: %w", q, err)
		}
		wantItems, wantDists, err := ref.NearestK(pt, k)
		if err != nil {
			return fmt.Errorf("selftest: reference nearest %d: %w", q, err)
		}
		if len(gotNb) != len(wantItems) {
			return fmt.Errorf("selftest: nearest %d: sharded %d neighbors, unsharded %d", q, len(gotNb), len(wantItems))
		}
		for i := range gotNb {
			//strlint:ignore floateq the merge promises bit-identical distances to the unsharded tree; tolerance would mask drift
			if gotNb[i].Item.ID != wantItems[i].ID || gotNb[i].Dist != wantDists[i] {
				return fmt.Errorf("selftest: nearest %d[%d]: sharded (%d, %g), unsharded (%d, %g)",
					q, i, gotNb[i].Item.ID, gotNb[i].Dist, wantItems[i].ID, wantDists[i])
			}
		}
	}

	// OpBatch: one batch of windows, compared per query.
	batch := make([]geom.Rect, 8)
	for i := range batch {
		x := rng.Float64() * 0.9
		y := rng.Float64() * 0.9
		batch[i] = geom.R2(x, y, x+0.1, y+0.1)
	}
	batchHit := map[int]bool{}
	for _, q := range batch {
		for _, id := range topo.m.OverlapRect(q) {
			batchHit[id] = true
		}
	}
	for id := range batchHit {
		expected[id]++
	}
	gotBatch, err := cl.Batch(batch)
	if err != nil {
		return fmt.Errorf("selftest: batch: %w", err)
	}
	for i, q := range batch {
		var want []wire.Item
		if err := ref.Search(q, func(it strtree.Item) bool {
			want = append(want, wire.Item{Rect: it.Rect, ID: it.ID})
			return true
		}); err != nil {
			return fmt.Errorf("selftest: reference batch search %d: %w", i, err)
		}
		if !sameIDs(itemIDs(gotBatch[i]), itemIDs(want)) {
			return fmt.Errorf("selftest: batch[%d]: results differ", i)
		}
	}

	// OpStats: a cluster aggregate, not comparable to the reference tree;
	// assert it fans out to every backend and sums to sane figures.
	for _, id := range topo.m.All() {
		expected[id]++
	}
	st, err := cl.Stats()
	if err != nil {
		return fmt.Errorf("selftest: stats: %w", err)
	}
	if st.Completed == 0 || st.LogicalReads == 0 {
		return fmt.Errorf("selftest: stats: aggregate reports no work (completed=%d logical=%d)", st.Completed, st.LogicalReads)
	}

	// Pruning: actual per-backend round trips must equal the MBR-overlap
	// prediction — no shard was asked anything the map could prove empty.
	if narrow == 0 {
		return fmt.Errorf("selftest: no window query skipped a shard; dataset/shard geometry gives pruning nothing to prove")
	}
	bs := topo.router.BackendStats()
	for i, b := range bs {
		if b.Requests != expected[i] {
			return fmt.Errorf("selftest: pruning: backend %d (%s) saw %d requests, shard-MBR prediction is %d",
				i, b.Addr, b.Requests, expected[i])
		}
		if b.Errors != 0 || b.Retries != 0 || b.Ejections != 0 {
			return fmt.Errorf("selftest: backend %d unhealthy before kill: %+v", i, b)
		}
	}
	fmt.Fprintf(w, "selftest: %d items across %d shards, %d probes per op\n", cfg.Size, cfg.Shards, cfg.Queries)
	fmt.Fprintf(w, "  identity: search/count/searchpoint/nearest/batch answers match the unsharded tree\n")
	fmt.Fprintf(w, "  pruning: per-backend requests match shard-MBR prediction (%v); %d/%d windows skipped a shard\n",
		expected, narrow, cfg.Queries)

	if adminURL != "" {
		if err := verifyRouterAdmin(w, adminURL, len(bs), false); err != nil {
			return fmt.Errorf("selftest: %w", err)
		}
	}

	// ------------------------------------------------------------ failure
	// Kill backend 0 hard: stop its server so its port refuses connections.
	//strlint:ignore ctxprop kill sequence of a self-contained harness
	killCtx, cancelKill := context.WithTimeout(context.Background(), 5*time.Second)
	err = topo.backends[0].Shutdown(killCtx)
	cancelKill()
	if err != nil {
		return fmt.Errorf("selftest: killing backend 0: %w", err)
	}

	// A window inside shard 0's MBR must now answer StatusUnavailable —
	// promptly, not by hanging until some transport timeout.
	mbr0 := topo.m.Shards[0].MBR.Rect()
	cx := (mbr0.Min[0] + mbr0.Max[0]) / 2
	cy := (mbr0.Min[1] + mbr0.Max[1]) / 2
	dead := geom.R2(cx, cy, cx+1e-6, cy+1e-6)
	t0 := time.Now()
	_, err = cl.Count(dead)
	elapsed := time.Since(t0)
	if !errors.Is(err, server.ErrUnavailable) {
		return fmt.Errorf("selftest: query into killed shard: got %v, want ErrUnavailable", err)
	}
	if elapsed > 3*time.Second {
		return fmt.Errorf("selftest: unavailable answer took %v; must fail fast, not hang", elapsed)
	}

	// The failure must show in the health counters, and the untouched
	// shards must keep answering.
	bs = topo.router.BackendStats()
	if bs[0].Ejections == 0 {
		return fmt.Errorf("selftest: backend 0 not ejected after kill: %+v", bs[0])
	}
	last := topo.m.Shards[cfg.Shards-1].MBR.Rect()
	lx := (last.Min[0] + last.Max[0]) / 2
	ly := (last.Min[1] + last.Max[1]) / 2
	if _, err := cl.Count(geom.R2(lx, ly, lx+1e-6, ly+1e-6)); err != nil {
		return fmt.Errorf("selftest: healthy shard stopped answering after unrelated kill: %w", err)
	}
	fmt.Fprintf(w, "  failure: killed backend 0 -> StatusUnavailable in %v, ejections=%d, healthy shards still serving\n",
		elapsed.Round(time.Millisecond), bs[0].Ejections)

	if adminURL != "" {
		if err := verifyRouterAdmin(w, adminURL, len(bs), true); err != nil {
			return fmt.Errorf("selftest: %w", err)
		}
	}

	// Drain the router cleanly; remaining backends go down in close().
	//strlint:ignore ctxprop drain of a self-contained harness
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelDrain()
	if err := topo.router.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("selftest: drain: %w", err)
	}
	fmt.Fprintf(w, "  drain: router shut down cleanly\n")
	return nil
}

// verifyRouterAdmin asserts the admin endpoint's contract: /healthz
// answers, /metrics exposes one request series per backend, and — after
// the kill — a non-zero ejection count.
func verifyRouterAdmin(w io.Writer, adminURL string, backends int, afterKill bool) error {
	resp, err := http.Get(adminURL + "/metrics")
	if err != nil {
		return fmt.Errorf("admin /metrics: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return fmt.Errorf("admin /metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("admin /metrics = %d, want 200", resp.StatusCode)
	}
	text := string(body)
	if n := strings.Count(text, "strrouter_backend_requests_total{"); n != backends {
		return fmt.Errorf("admin /metrics: %d backend request series, want %d", n, backends)
	}
	if afterKill {
		ejected := false
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "strrouter_backend_ejections_total{") && !strings.HasSuffix(line, " 0") {
				ejected = true
			}
		}
		if !ejected {
			return fmt.Errorf("admin /metrics: no non-zero ejection counter after kill")
		}
	}
	fmt.Fprintf(w, "  admin: /metrics ok (%d backend series%s)\n", backends,
		map[bool]string{true: ", ejection counter non-zero", false: ""}[afterKill])
	return nil
}
