package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"strtree/internal/geom"
	"strtree/internal/server"
)

// TestSelftest runs the full in-process topology proof: identity with
// the unsharded tree across all ops, pruning via backend counters, and
// the kill-one-backend failure path — including the admin smoke checks.
func TestSelftest(t *testing.T) {
	var out bytes.Buffer
	err := Selftest(&out, SelftestConfig{
		Shards:    3,
		Size:      4000,
		Queries:   40,
		Seed:      42,
		AdminAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("selftest failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"identity:", "pruning:", "failure:", "ejections=", "drain:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("selftest report missing %q:\n%s", want, out.String())
		}
	}
}

// TestRouterEdges drives the running topology through the edges the
// selftest's randomized workload does not pin down: a query outside
// every shard (empty fan-out), a dimensionality mismatch, and a window
// spanning all shards.
func TestRouterEdges(t *testing.T) {
	items := selftestItems(500, 7)
	topo, err := buildTopology(items, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.close()
	cl := topo.client

	// Outside the data extent: no shard overlaps, empty OK answer with no
	// backend round trips.
	before := topo.router.BackendStats()
	n, err := cl.Count(geom.R2(5, 5, 6, 6))
	if err != nil || n != 0 {
		t.Fatalf("count outside extent = %d, %v; want 0, nil", n, err)
	}
	items2, err := cl.Search(geom.R2(5, 5, 6, 6))
	if err != nil || len(items2) != 0 {
		t.Fatalf("search outside extent = %v, %v", items2, err)
	}
	after := topo.router.BackendStats()
	for i := range after {
		if after[i].Requests != before[i].Requests {
			t.Fatalf("backend %d contacted for a query overlapping no shard", i)
		}
	}

	// Wrong dimensionality fails in-band as a bad request, before any
	// backend sees it.
	if _, err := cl.Count(geom.Rect{Min: geom.Point{0}, Max: geom.Point{1}}); !errors.Is(err, server.ErrBadRequest) {
		t.Fatalf("1-d query against 2-d map: got %v, want ErrBadRequest", err)
	}
	// The connection survives a dims rejection.
	if _, err := cl.Count(geom.R2(0, 0, 1, 1)); err != nil {
		t.Fatalf("count after dims rejection: %v", err)
	}

	// Full-extent window visits every shard and counts everything.
	full, err := cl.Count(geom.R2(0, 0, 1, 1))
	if err != nil || full != 500 {
		t.Fatalf("full-extent count = %d, %v; want 500", full, err)
	}
}

func TestNewRejectsBadMaps(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil map accepted")
	}
	items := selftestItems(100, 1)
	m, _, err := partitionItems(items, 2)
	if err != nil {
		t.Fatal(err)
	}
	// No addresses on shard 0.
	if _, err := New(Config{Map: m}); err == nil {
		t.Error("map without backend addresses accepted")
	}
}

// TestRouterAdminSurface exercises the admin handler directly: metrics
// exposition, the JSON stats mirror, and the readiness flip.
func TestRouterAdminSurface(t *testing.T) {
	items := selftestItems(300, 3)
	topo, err := buildTopology(items, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.close()
	if _, err := topo.client.Count(geom.R2(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}

	h := topo.router.AdminHandler()
	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"strrouter_completed_total", "strrouter_fanout_width_shards",
		"strrouter_backend_requests_total{backend=", "strrouter_healthy_backends 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get("/stats")
	if code != 200 {
		t.Fatalf("/stats = %d", code)
	}
	var stats struct {
		Percentiles string           `json:"percentiles"`
		Families    []map[string]any `json:"families"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/stats is not a JSON object: %v", err)
	}
	if stats.Percentiles != "upper-bound" {
		t.Errorf("/stats percentiles = %q, want %q (folded quantiles are upper bounds)", stats.Percentiles, "upper-bound")
	}
	if len(stats.Families) == 0 {
		t.Error("/stats families empty")
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz while serving = %d", code)
	}
	topo.router.MarkNotReady()
	if code, _ := get("/healthz"); code != 503 {
		t.Fatalf("/healthz after MarkNotReady = %d", code)
	}
}
