// Package svg is a minimal SVG writer used to render the paper's Figures
// 2-4 (leaf-level bounding rectangles of the Long Beach data under each
// packing algorithm) and Figures 5-6 (the CFD point cloud). It maps the
// unit data square onto a pixel canvas with the y axis flipped so plots
// match the paper's orientation.
package svg

import (
	"bytes"
	"fmt"
	"io"
)

// Canvas accumulates SVG elements over a unit-square viewport.
type Canvas struct {
	width, height int
	margin        int
	buf           bytes.Buffer
}

// New returns a canvas of the given pixel size with a small margin.
func New(width, height int) *Canvas {
	c := &Canvas{width: width, height: height, margin: 10}
	return c
}

// x and y map unit coordinates to pixels (y flipped).
func (c *Canvas) x(v float64) float64 {
	return float64(c.margin) + v*float64(c.width-2*c.margin)
}

func (c *Canvas) y(v float64) float64 {
	return float64(c.height-c.margin) - v*float64(c.height-2*c.margin)
}

// Rect draws an axis-aligned rectangle given in unit coordinates.
func (c *Canvas) Rect(x0, y0, x1, y1 float64, stroke string, strokeWidth float64, fill string) {
	px, py := c.x(x0), c.y(y1)
	w, h := c.x(x1)-c.x(x0), c.y(y0)-c.y(y1)
	fmt.Fprintf(&c.buf,
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" stroke="%s" stroke-width="%.2f" fill="%s"/>`+"\n",
		px, py, w, h, stroke, strokeWidth, fill)
}

// Dot draws a small filled circle at unit coordinates.
func (c *Canvas) Dot(x, y, r float64, fill string) {
	fmt.Fprintf(&c.buf, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`+"\n",
		c.x(x), c.y(y), r, fill)
}

// Text places a label at unit coordinates.
func (c *Canvas) Text(x, y float64, size int, s string) {
	fmt.Fprintf(&c.buf, `<text x="%.2f" y="%.2f" font-size="%d" font-family="sans-serif">%s</text>`+"\n",
		c.x(x), c.y(y), size, s)
}

// WriteTo emits the complete SVG document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	var out bytes.Buffer
	fmt.Fprintf(&out, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.width, c.height, c.width, c.height)
	fmt.Fprintf(&out, `<rect width="%d" height="%d" fill="white"/>`+"\n", c.width, c.height)
	out.Write(c.buf.Bytes())
	out.WriteString("</svg>\n")
	return out.WriteTo(w)
}
