package svg

import (
	"strings"
	"testing"
)

func render(t *testing.T, c *Canvas) string {
	t.Helper()
	var sb strings.Builder
	if _, err := c.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestDocumentStructure(t *testing.T) {
	c := New(400, 300)
	got := render(t, c)
	if !strings.HasPrefix(got, `<svg xmlns="http://www.w3.org/2000/svg" width="400" height="300"`) {
		t.Fatalf("bad document start: %q", got[:60])
	}
	if !strings.HasSuffix(strings.TrimSpace(got), "</svg>") {
		t.Fatal("document not closed")
	}
}

func TestRectCoordinates(t *testing.T) {
	c := New(120, 120) // margin 10: unit square maps to [10, 110]
	c.Rect(0, 0, 1, 1, "black", 1, "none")
	got := render(t, c)
	// Full unit rect: x=10, y=10 (y flipped), 100x100.
	if !strings.Contains(got, `<rect x="10.00" y="10.00" width="100.00" height="100.00"`) {
		t.Fatalf("rect mapping wrong: %s", got)
	}
}

func TestYAxisFlipped(t *testing.T) {
	c := New(120, 120)
	c.Dot(0, 0, 1, "black") // unit origin = bottom-left = pixel (10, 110)
	got := render(t, c)
	if !strings.Contains(got, `cx="10.00" cy="110.00"`) {
		t.Fatalf("origin not at bottom-left: %s", got)
	}
}

func TestTextAndDotEmitted(t *testing.T) {
	c := New(200, 200)
	c.Dot(0.5, 0.5, 2, "red")
	c.Text(0.1, 0.9, 12, "STR")
	got := render(t, c)
	if !strings.Contains(got, "<circle") || !strings.Contains(got, ">STR</text>") {
		t.Fatalf("elements missing: %s", got)
	}
}

func TestMultipleWritesIdentical(t *testing.T) {
	c := New(100, 100)
	c.Rect(0.2, 0.2, 0.8, 0.8, "blue", 0.5, "none")
	if a, b := render(t, c), render(t, c); a != b {
		t.Fatal("WriteTo is not repeatable")
	}
}
