package pack

import (
	"math/rand"
	"testing"

	"strtree/internal/geom"
	"strtree/internal/node"
)

func TestTGSIsPermutation(t *testing.T) {
	base := uniformSquares(1234, 21)
	for _, tgs := range []TGS{{}, {UseMargin: true}} {
		entries := append([]node.Entry(nil), base...)
		tgs.Order(entries, 10, 0)
		seen := make(map[uint64]bool, len(entries))
		for _, e := range entries {
			if seen[e.Ref] {
				t.Fatalf("%s duplicated ref %d", tgs.Name(), e.Ref)
			}
			seen[e.Ref] = true
		}
		if len(seen) != len(base) {
			t.Fatalf("%s lost entries", tgs.Name())
		}
	}
}

func TestTGSTinyInputs(t *testing.T) {
	TGS{}.Order(nil, 10, 0)
	one := uniformSquares(1, 22)
	TGS{}.Order(one, 10, 0)
	two := uniformSquares(2, 23)
	TGS{}.Order(two, 1, 0)
}

func TestTGSSeparatesClusters(t *testing.T) {
	// Two tight, well-separated clusters of 20 points each with n = 20:
	// the greedy binary split must cut exactly between the clusters, so
	// the two nodes have disjoint MBRs.
	rng := rand.New(rand.NewSource(24))
	var entries []node.Entry
	for i := 0; i < 20; i++ {
		p := geom.Pt2(0.1+rng.Float64()*0.05, 0.1+rng.Float64()*0.05)
		entries = append(entries, node.Entry{Rect: geom.PointRect(p), Ref: uint64(i)})
	}
	for i := 20; i < 40; i++ {
		p := geom.Pt2(0.8+rng.Float64()*0.05, 0.8+rng.Float64()*0.05)
		entries = append(entries, node.Entry{Rect: geom.PointRect(p), Ref: uint64(i)})
	}
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	TGS{}.Order(entries, 20, 0)
	a, p := leafMBRStats(entries, 20)
	_ = p
	// Two tiny cluster MBRs: total area well under a mixed split.
	if a > 0.01 {
		t.Fatalf("TGS split mixed the clusters: leaf area %g", a)
	}
	for i := 0; i < 20; i++ {
		if (entries[i].Ref < 20) != (entries[0].Ref < 20) {
			t.Fatal("first node mixes both clusters")
		}
	}
}

func TestTGSQualityCompetitiveWithSTR(t *testing.T) {
	// On uniform data TGS should be in STR's league on leaf area (both
	// produce tilings); TGS is greedier and usually a bit tighter on
	// skewed data.
	base := uniformSquares(5000, 25)
	const n = 100
	str := append([]node.Entry(nil), base...)
	STR{}.Order(str, n, 0)
	strArea, _ := leafMBRStats(str, n)

	tgs := append([]node.Entry(nil), base...)
	TGS{}.Order(tgs, n, 0)
	tgsArea, _ := leafMBRStats(tgs, n)

	if tgsArea > strArea*1.25 {
		t.Fatalf("TGS leaf area %.4f much worse than STR %.4f", tgsArea, strArea)
	}
}

func TestTGSFullNodesExceptLast(t *testing.T) {
	// Node-aligned cuts guarantee every chunk of n is one TGS group, so
	// utilization stays at packing level: verify group boundaries never
	// split below n except once at the very end.
	entries := uniformSquares(1037, 26)
	const n = 50
	TGS{}.Order(entries, n, 0)
	// Nothing to verify structurally beyond the permutation (the builder
	// chunks consecutively), but the count of full nodes is fixed:
	full := len(entries) / n
	area, _ := leafMBRStats(entries, n)
	if area <= 0 {
		t.Fatal("degenerate packing")
	}
	if full != 20 {
		t.Fatalf("unexpected arithmetic: %d full nodes", full)
	}
}

func TestTGSMarginVariant(t *testing.T) {
	base := uniformSquares(2000, 27)
	const n = 50
	tgs := append([]node.Entry(nil), base...)
	TGS{UseMargin: true}.Order(tgs, n, 0)
	_, margin := leafMBRStats(tgs, n)
	// Greedy binary splits trail STR's balanced tiles on perimeter for
	// uniform data; the bar is staying far below the one-dimensional
	// degenerate case (NX's strips).
	nx := append([]node.Entry(nil), base...)
	NX{}.Order(nx, n, 0)
	_, nxMargin := leafMBRStats(nx, n)
	if margin > nxMargin/1.5 {
		t.Fatalf("TGS-margin perimeter %.1f too close to NX strips %.1f", margin, nxMargin)
	}
	if (TGS{UseMargin: true}).Name() != "TGS-margin" || (TGS{}).Name() != "TGS" {
		t.Fatal("names wrong")
	}
}

func BenchmarkTGSOrder20k(b *testing.B) {
	base := uniformSquares(20000, 28)
	work := make([]node.Entry, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		TGS{}.Order(work, 100, 0)
	}
}
