package pack

import (
	"testing"

	"strtree/internal/geom"
	"strtree/internal/node"
)

func cube3() geom.Rect { return geom.UnitCube(3) }

func collectPack(t *testing.T, s STRExternal, n int, entries []node.Entry) []node.Entry {
	t.Helper()
	i := 0
	src := func() (node.Entry, bool) {
		if i >= len(entries) {
			return node.Entry{}, false
		}
		e := entries[i]
		i++
		return e, true
	}
	var out []node.Entry
	if err := s.Pack(n, src, func(e node.Entry) error {
		out = append(out, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestExternalSTRMatchesInMemory(t *testing.T) {
	// Random continuous coordinates: no ties, so the stable external sort
	// and the unstable in-memory sort agree exactly.
	base := uniformSquares(5000, 91)
	const n = 100
	inMem := append([]node.Entry(nil), base...)
	STR{}.Order(inMem, n, 0)

	ext := collectPack(t, STRExternal{RunSize: 256, TmpDir: t.TempDir()}, n, base)
	if len(ext) != len(inMem) {
		t.Fatalf("external emitted %d of %d", len(ext), len(inMem))
	}
	for i := range inMem {
		if ext[i].Ref != inMem[i].Ref {
			t.Fatalf("orders diverge at position %d: %d vs %d", i, ext[i].Ref, inMem[i].Ref)
		}
	}
}

func TestExternalSTRTinyAndEmpty(t *testing.T) {
	s := STRExternal{RunSize: 16, TmpDir: t.TempDir()}
	if got := collectPack(t, s, 10, nil); len(got) != 0 {
		t.Fatalf("empty input emitted %d", len(got))
	}
	one := uniformSquares(1, 92)
	if got := collectPack(t, s, 10, one); len(got) != 1 || got[0].Ref != one[0].Ref {
		t.Fatalf("single entry mishandled: %v", got)
	}
}

func TestExternalSTRRejects3D(t *testing.T) {
	s := STRExternal{RunSize: 16, TmpDir: t.TempDir()}
	three := []node.Entry{{Rect: cube3()}}
	i := 0
	err := s.Pack(10, func() (node.Entry, bool) {
		if i > 0 {
			return node.Entry{}, false
		}
		i++
		return three[0], true
	}, func(node.Entry) error { return nil })
	if err == nil {
		t.Fatal("3-D entry accepted")
	}
}

func TestExternalSTRDefaultRunSize(t *testing.T) {
	if (STRExternal{}).runSize() != 1<<20 {
		t.Fatal("default run size wrong")
	}
	if (STRExternal{RunSize: 7}).runSize() != 7 {
		t.Fatal("explicit run size ignored")
	}
}
