package pack

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"strtree/internal/extsort"
	"strtree/internal/geom"
	"strtree/internal/node"
)

// STRExternal performs the 2-D STR ordering without ever holding more
// than RunSize entries in memory: input spills to a temporary file, the
// x phase is an external merge sort, and each vertical slice is
// external-sorted by y as it streams out. Combined with
// rtree.BulkLoadOrdered this lets a tree be packed from data sets far
// larger than RAM — the preprocessing-over-files setting the paper's
// packing algorithms are meant for.
type STRExternal struct {
	// RunSize is the maximum number of entries held in memory during any
	// sort phase. Zero means 1 << 20.
	RunSize int
	// TmpDir hosts the spill files ("" = OS default).
	TmpDir string
	// Workers bounds the goroutines the external sorts use to overlap run
	// sorting/spilling with input streaming (< 1 means 1). The emitted
	// order is identical for every setting.
	Workers int
	// StatsOut, when non-nil, receives the external sorter's cumulative
	// activity after a successful Pack — how often the RunSize budget
	// forced spills, and how much was merged. It exists so callers above
	// this layer can report sort behavior without importing extsort.
	StatsOut *SortStats
}

// SortStats mirrors extsort.Stats for consumers above the pack layer.
type SortStats struct {
	// Sorts counts completed external-sort invocations (one for the x
	// phase plus one per y slab).
	Sorts uint64
	// EntriesSorted is the total entries ingested across those sorts.
	EntriesSorted uint64
	// RunsSpilled is the number of sorted runs written to temp files;
	// zero means every phase fit within RunSize.
	RunsSpilled uint64
	// Merges counts k-way merge phases (one per sort that spilled).
	Merges uint64
}

func (s STRExternal) runSize() int {
	if s.RunSize <= 0 {
		return 1 << 20
	}
	return s.RunSize
}

// Pack consumes 2-D entries from src (until it reports false), orders
// them by STR for node capacity n, and streams them to emit in packing
// order. The number of entries is discovered during the spill phase.
func (s STRExternal) Pack(n int, src func() (node.Entry, bool), emit func(node.Entry) error) (err error) {
	if n < 1 {
		return fmt.Errorf("pack: node capacity %d < 1", n)
	}
	// Phase 0: spill the input while counting.
	spill, err := newSpill(s.TmpDir)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, spill.cleanup()) }()
	count := 0
	for {
		e, ok := src()
		if !ok {
			break
		}
		if e.Rect.Dim() != 2 {
			return fmt.Errorf("pack: STRExternal is 2-D, got %d-D entry", e.Rect.Dim())
		}
		if err := spill.write(&e); err != nil {
			return err
		}
		count++
	}
	if count == 0 {
		return nil
	}

	// Phase 1: external sort by center x into a second spill file.
	sorter, err := extsort.NewSorter(2, s.runSize(), s.TmpDir)
	if err != nil {
		return err
	}
	sorter.Workers = s.Workers
	xsorted, err := newSpill(s.TmpDir)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, xsorted.cleanup()) }()
	read := spill.reader()
	var readErr error
	if err := sorter.Sort(extsort.ByCenter(0),
		func() (node.Entry, bool) {
			e, ok, err2 := read()
			if err2 != nil {
				readErr = err2
				return node.Entry{}, false
			}
			if !ok {
				return node.Entry{}, false
			}
			return e, true
		},
		xsorted.write2); err != nil {
		return err
	}
	if readErr != nil {
		return readErr
	}

	// Phase 2: slice into slabs of n*ceil(sqrt(P)) and external-sort each
	// slab by center y, streaming straight to the caller.
	p := (count + n - 1) / n
	slab := n * int(math.Ceil(math.Sqrt(float64(p))-1e-9))
	if slab < n {
		slab = n
	}
	readX := xsorted.reader()
	remaining := count
	for remaining > 0 {
		take := slab
		if take > remaining {
			take = remaining
		}
		left := take
		var slabErr error
		if err := sorter.Sort(extsort.ByCenter(1),
			func() (node.Entry, bool) {
				if left == 0 {
					return node.Entry{}, false
				}
				e, ok, err2 := readX()
				if err2 != nil {
					slabErr = err2
					return node.Entry{}, false
				}
				if !ok {
					return node.Entry{}, false
				}
				left--
				return e, true
			},
			emit); err != nil {
			return err
		}
		if slabErr != nil {
			return slabErr
		}
		if left != 0 {
			return fmt.Errorf("pack: slab short by %d entries", left)
		}
		remaining -= take
	}
	if s.StatsOut != nil {
		st := sorter.Stats()
		*s.StatsOut = SortStats{
			Sorts:         st.Sorts,
			EntriesSorted: st.EntriesSorted,
			RunsSpilled:   st.RunsSpilled,
			Merges:        st.Merges,
		}
	}
	return nil
}

// spill is an append-then-scan temporary file of fixed-width 2-D entries.
type spill struct {
	f *os.File
	w *bufio.Writer
}

const spillEntrySize = 16*2 + 8

func newSpill(dir string) (*spill, error) {
	f, err := os.CreateTemp(dir, "strpack-*")
	if err != nil {
		return nil, err
	}
	return &spill{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

func (s *spill) write(e *node.Entry) error {
	var buf [spillEntrySize]byte
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(e.Rect.Min[0]))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(e.Rect.Max[0]))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(e.Rect.Min[1]))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(e.Rect.Max[1]))
	binary.LittleEndian.PutUint64(buf[32:], e.Ref)
	_, err := s.w.Write(buf[:])
	return err
}

// write2 adapts write to the emit signature.
func (s *spill) write2(e node.Entry) error { return s.write(&e) }

// reader flushes and returns a sequential scanner over the file.
func (s *spill) reader() func() (node.Entry, bool, error) {
	if err := s.w.Flush(); err != nil {
		return func() (node.Entry, bool, error) { return node.Entry{}, false, err }
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return func() (node.Entry, bool, error) { return node.Entry{}, false, err }
	}
	r := bufio.NewReaderSize(s.f, 1<<16)
	return func() (node.Entry, bool, error) {
		var buf [spillEntrySize]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			if err == io.EOF {
				return node.Entry{}, false, nil
			}
			return node.Entry{}, false, err
		}
		e := node.Entry{Rect: geom.Rect{Min: make(geom.Point, 2), Max: make(geom.Point, 2)}}
		e.Rect.Min[0] = math.Float64frombits(binary.LittleEndian.Uint64(buf[0:]))
		e.Rect.Max[0] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
		e.Rect.Min[1] = math.Float64frombits(binary.LittleEndian.Uint64(buf[16:]))
		e.Rect.Max[1] = math.Float64frombits(binary.LittleEndian.Uint64(buf[24:]))
		e.Ref = binary.LittleEndian.Uint64(buf[32:])
		return e, true, nil
	}
}

// cleanup closes and removes the spill file, reporting rather than
// dropping either failure.
func (s *spill) cleanup() error {
	err := s.f.Close()
	if rmErr := os.Remove(s.f.Name()); rmErr != nil {
		err = errors.Join(err, rmErr)
	}
	return err
}
