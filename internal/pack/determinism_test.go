package pack

import (
	"testing"

	"strtree/internal/node"
)

// workered builds one instance of every packing order at the given worker
// count. Every orderer must produce the same permutation at any worker
// count — the guarantee that makes the parallel build pipeline safe to
// enable by default.
func workered(w int) []interface {
	Order(entries []node.Entry, n, level int)
	Name() string
} {
	return []interface {
		Order(entries []node.Entry, n, level int)
		Name() string
	}{
		NX{Workers: w},
		YSort{Workers: w},
		HS{Workers: w},
		HS{Exact: true, Workers: w},
		STR{Workers: w},
		Serpentine{Workers: w},
		SliceFactor{Num: 2, Den: 1, Workers: w},
		TGS{Workers: w},
		TGS{UseMargin: true, Workers: w},
	}
}

// TestOrderersWorkerInvariant checks that every orderer emits the exact
// same entry sequence at Workers 1 and Workers 8, on data with heavy key
// duplication (the coarse square grid makes center-coordinate ties, the
// case an unstable parallel sort would reorder).
func TestOrderersWorkerInvariant(t *testing.T) {
	base := uniformSquares(4097, 7)
	// Snap centers onto a coarse grid so duplicate sort keys are common.
	for i := range base {
		r := base[i].Rect
		w := r.Max[0] - r.Min[0]
		h := r.Max[1] - r.Min[1]
		x := float64(int(r.Min[0]*16)) / 16
		y := float64(int(r.Min[1]*16)) / 16
		base[i].Rect.Min[0], base[i].Rect.Max[0] = x, x+w
		base[i].Rect.Min[1], base[i].Rect.Max[1] = y, y+h
	}
	seq := workered(1)
	par := workered(8)
	for i, o1 := range seq {
		o8 := par[i]
		t.Run(o1.Name(), func(t *testing.T) {
			a := append([]node.Entry(nil), base...)
			b := append([]node.Entry(nil), base...)
			o1.Order(a, 10, 0)
			o8.Order(b, 10, 0)
			for j := range a {
				if a[j].Ref != b[j].Ref {
					t.Fatalf("position %d: workers=1 put ref %d, workers=8 put ref %d",
						j, a[j].Ref, b[j].Ref)
				}
			}
		})
	}
}
