// Package pack implements the three R-tree packing algorithms the STR
// paper compares — Sort-Tile-Recursive (the paper's contribution),
// Nearest-X [Roussopoulos & Leifker 85] and Hilbert Sort [Kamel &
// Faloutsos 93] — plus two ablation orderings used by the repository's
// extra benchmarks.
//
// Each algorithm is an rtree.Orderer: it permutes the entries of one tree
// level into the sequence in which the builder cuts them into nodes of
// capacity n. Per the paper (Section 2.2) "the three algorithms differ
// only in how the rectangles are ordered at each level"; the surrounding
// bottom-up build is shared and lives in internal/rtree.
//
// All sorting goes through internal/psort: keys are precomputed once per
// entry and the sort itself is a parallel merge sort with an index
// tie-break, so every orderer produces byte-for-byte the same permutation
// at any Workers setting.
package pack

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"strtree/internal/hilbert"
	"strtree/internal/node"
	"strtree/internal/psort"
)

// NX is the Nearest-X packing order: rectangles sorted by the x-coordinate
// of their centers ("No details are given in the paper so we assume that
// the x-coordinate of the rectangle's center is used"). Cheap to build, but
// it packs long skinny nodes with huge perimeters, which is why the paper
// finds it uncompetitive for region queries.
type NX struct {
	// Workers > 1 sorts with that many goroutines; the output is identical
	// for every setting.
	Workers int
}

// Name implements rtree.Orderer.
func (NX) Name() string { return "NX" }

// Order implements rtree.Orderer.
func (o NX) Order(entries []node.Entry, n, level int) {
	sortByCenter(entries, 0, normWorkers(o.Workers))
}

// YSort orders by the y-coordinate of the centers. It is NX rotated 90
// degrees, included as an ablation control: any difference between NX and
// YSort on a data set measures the set's axis anisotropy, not algorithm
// quality.
type YSort struct {
	// Workers > 1 sorts with that many goroutines; the output is identical
	// for every setting.
	Workers int
}

// Name implements rtree.Orderer.
func (YSort) Name() string { return "Y" }

// Order implements rtree.Orderer.
func (o YSort) Order(entries []node.Entry, n, level int) {
	if len(entries) < 2 {
		return
	}
	sortByCenter(entries, len(entries[0].Rect.Min)-1, normWorkers(o.Workers))
}

func sortByCenter(entries []node.Entry, axis, workers int) {
	psort.ByCenter(entries, axis, workers)
}

func normWorkers(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// forEachSlab cuts [0, total) into consecutive slabs of the given size
// (the last one short) and invokes fn for each, running up to workers
// slabs concurrently. Slabs are disjoint, so the concurrent and
// sequential schedules produce identical data.
func forEachSlab(total, slab, workers int, fn func(start, end, idx int)) {
	if workers <= 1 {
		idx := 0
		for start := 0; start < total; start += slab {
			end := start + slab
			if end > total {
				end = total
			}
			fn(start, end, idx)
			idx++
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	idx := 0
	for start := 0; start < total; start += slab {
		end := start + slab
		if end > total {
			end = total
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(start, end, idx int) {
			defer wg.Done()
			fn(start, end, idx)
			<-sem
		}(start, end, idx)
		idx++
	}
	wg.Wait()
}

// HS is the Hilbert-Sort packing order: rectangle centers sorted by their
// distance from the origin along the Hilbert curve. The curve grid is
// fitted to the bounding box of the centers at each level, realizing the
// paper's arbitrarily-fine conceptual grid for float coordinates.
type HS struct {
	// MaxOrder caps the curve order (bits per axis). Zero means the finest
	// order whose index fits in 64 bits (31 for 2-D data).
	MaxOrder int
	// Exact switches 2-D data to the paper's lazy bitwise comparison at 52
	// bits per axis — "one does not store or compute all bit values on the
	// hypothetical grid" — so points closer than the 31-bit grid still
	// order correctly. Ignored for other dimensionalities.
	Exact bool
	// Workers > 1 computes Hilbert keys and sorts with that many
	// goroutines; the output is identical for every setting.
	Workers int
}

// Name implements rtree.Orderer.
func (HS) Name() string { return "HS" }

// Order implements rtree.Orderer.
func (h HS) Order(entries []node.Entry, n, level int) {
	if len(entries) < 2 {
		return
	}
	workers := normWorkers(h.Workers)
	dims := entries[0].Rect.Dim()
	if h.Exact && dims == 2 {
		h.orderExact2D(entries, workers)
		return
	}
	order := 64 / dims
	if order > 31 {
		order = 31
	}
	if h.MaxOrder > 0 && h.MaxOrder < order {
		order = h.MaxOrder
	}
	// Fit the grid to the centers.
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for d := 0; d < dims; d++ {
		lo[d] = math.Inf(1)
		hi[d] = math.Inf(-1)
	}
	for i := range entries {
		for d := 0; d < dims; d++ {
			c := entries[i].Rect.CenterAxis(d)
			lo[d] = math.Min(lo[d], c)
			hi[d] = math.Max(hi[d], c)
		}
	}
	m, err := hilbert.NewMapper(order, lo, hi)
	if err != nil {
		// Bounds come from the data itself, so this is unreachable for
		// valid entries; fall back to NX rather than corrupt the build.
		sortByCenter(entries, 0, workers)
		return
	}
	keys := make([]uint64, len(entries))
	psort.Chunks(len(entries), workers, func(clo, chi int) {
		center := make([]float64, dims)
		cell := make([]uint32, dims)
		for i := clo; i < chi; i++ {
			for d := 0; d < dims; d++ {
				center[d] = entries[i].Rect.CenterAxis(d)
			}
			m.CellInto(center, cell)
			keys[i] = hilbert.Index(order, cell)
		}
	})
	psort.ByKeys(entries, keys, workers)
}

// cell2 is an exact-mode Hilbert key: a 52-bit grid cell compared lazily
// along the curve.
type cell2 struct {
	x, y uint64
}

// orderExact2D sorts by curve position using lazy 52-bit comparison, the
// paper's in-practice method for arbitrary float coordinates.
func (h HS) orderExact2D(entries []node.Entry, workers int) {
	const order = 52 // float64 mantissa precision
	lo := [2]float64{math.Inf(1), math.Inf(1)}
	hi := [2]float64{math.Inf(-1), math.Inf(-1)}
	for i := range entries {
		for d := 0; d < 2; d++ {
			c := entries[i].Rect.CenterAxis(d)
			lo[d] = math.Min(lo[d], c)
			hi[d] = math.Max(hi[d], c)
		}
	}
	cells := float64(uint64(1)<<order - 1)
	scale := [2]float64{}
	for d := 0; d < 2; d++ {
		if ext := hi[d] - lo[d]; ext > 0 {
			scale[d] = cells / ext
		}
	}
	cell := func(e *node.Entry, d int) uint64 {
		v := (e.Rect.CenterAxis(d) - lo[d]) * scale[d]
		switch {
		case v <= 0:
			return 0
		case v >= cells:
			return uint64(cells)
		default:
			return uint64(v)
		}
	}
	// Precompute the grid cells once, then sort with the lazy comparator.
	keys := make([]cell2, len(entries))
	psort.Chunks(len(entries), workers, func(clo, chi int) {
		for i := clo; i < chi; i++ {
			keys[i] = cell2{x: cell(&entries[i], 0), y: cell(&entries[i], 1)}
		}
	})
	psort.ByKeysFunc(entries, keys, func(a, b cell2) int {
		return hilbert.Compare2D(order, a.x, a.y, b.x, b.y)
	}, workers)
}

// STRTiming accumulates the wall time an STR build spends in its two
// ordering phases, for strbench's per-phase breakdown. Counters are
// atomic so one STRTiming can be shared across levels and goroutines.
type STRTiming struct {
	// SortNanos is the time in the dominant first-axis sort.
	SortNanos atomic.Int64
	// TileNanos is the time spent tiling: slab partitioning plus the
	// per-slab sorts on the remaining axes.
	TileNanos atomic.Int64
}

// STR is the paper's Sort-Tile-Recursive packing order.
//
// For k = 2 (paper Section 2.2): with P = ceil(r/n) leaf pages, sort the
// rectangles by the x-coordinate of their centers and cut them into
// S = ceil(sqrt(P)) vertical slices of S*n consecutive rectangles; then
// sort each slice by y. The builder's subsequent grouping into runs of n
// realizes the tiling. For k > 2 the first coordinate splits the input
// into S = ceil(P^(1/k)) slabs of n*ceil(P^((k-1)/k)) rectangles, each
// processed recursively as a (k-1)-dimensional data set.
type STR struct {
	// Workers > 1 parallelizes the first-axis sort through the psort
	// kernel and sorts slabs concurrently (the parallel packing the
	// paper's future-work section anticipates). The resulting order is
	// identical for every setting.
	Workers int
	// Timing, when non-nil, accumulates per-phase wall time.
	Timing *STRTiming
}

// Name implements rtree.Orderer.
func (STR) Name() string { return "STR" }

// Order implements rtree.Orderer.
func (s STR) Order(entries []node.Entry, n, level int) {
	if len(entries) < 2 {
		return
	}
	if n < 1 {
		//strlint:ignore panics documented contract: a capacity below 1 is a builder bug, not a data condition
		panic("pack: node capacity < 1")
	}
	dims := entries[0].Rect.Dim()
	t0 := time.Now()
	sortByCenter(entries, 0, s.workers())
	if s.Timing != nil {
		s.Timing.SortNanos.Add(int64(time.Since(t0)))
	}
	if dims <= 1 {
		return
	}
	t0 = time.Now()
	s.slabs(entries, n, 0, dims)
	if s.Timing != nil {
		s.Timing.TileNanos.Add(int64(time.Since(t0)))
	}
}

// slabs cuts entries (already sorted on axis) into the STR slab sizes and
// tiles each slab over the remaining axes. Slab contents are independent
// after the partitioning sort, so slabs run concurrently (sequentially
// inside each) with output identical to the sequential schedule.
func (s STR) slabs(entries []node.Entry, n, axis, dims int) {
	rem := dims - axis // coordinates still to process
	p := (len(entries) + n - 1) / n
	// Slab size: n * ceil(P^((rem-1)/rem)) consecutive rectangles.
	slab := n * ceilPow(p, float64(rem-1)/float64(rem))
	if slab < n {
		slab = n
	}
	forEachSlab(len(entries), slab, s.workers(), func(start, end, _ int) {
		s.tile(entries[start:end], n, axis+1, dims)
	})
}

// tile applies the STR step for one axis and recurses on each slab.
// It always runs sequentially: concurrency comes from the slab pool one
// level up, which keeps the schedule simple and the output deterministic.
func (s STR) tile(entries []node.Entry, n, axis, dims int) {
	rem := dims - axis
	sortByCenter(entries, axis, 1)
	if rem <= 1 {
		return
	}
	p := (len(entries) + n - 1) / n
	slab := n * ceilPow(p, float64(rem-1)/float64(rem))
	if slab < n {
		slab = n
	}
	forEachSlab(len(entries), slab, 1, func(start, end, _ int) {
		s.tile(entries[start:end], n, axis+1, dims)
	})
}

func (s STR) workers() int {
	return normWorkers(s.Workers)
}

// ceilPow returns ceil(p^e) guarded against floating-point error for exact
// powers (e.g. 100^0.5 must be exactly 10, not 11).
func ceilPow(p int, e float64) int {
	return int(math.Ceil(math.Pow(float64(p), e) - 1e-9))
}

// Serpentine is STR with the y-order reversed in every other slice, so the
// packing order snakes through the tiles instead of jumping from the top
// of one slice to the bottom of the next. It is a natural locality
// refinement of STR (in the spirit of the paper's future-work search for
// better orders) and is measured by the ablation benchmarks. Only the 2-D
// case differs from STR; higher dimensions fall back to plain STR.
type Serpentine struct {
	// Workers > 1 parallelizes the x-sort and runs slices concurrently;
	// the output is identical for every setting.
	Workers int
}

// Name implements rtree.Orderer.
func (Serpentine) Name() string { return "STR-serp" }

// Order implements rtree.Orderer.
func (o Serpentine) Order(entries []node.Entry, n, level int) {
	if len(entries) < 2 {
		return
	}
	workers := normWorkers(o.Workers)
	if entries[0].Rect.Dim() != 2 {
		STR{Workers: o.Workers}.Order(entries, n, level)
		return
	}
	sortByCenter(entries, 0, workers)
	p := (len(entries) + n - 1) / n
	slab := n * ceilPow(p, 0.5)
	forEachSlab(len(entries), slab, workers, func(start, end, idx int) {
		part := entries[start:end]
		sortByCenter(part, 1, 1)
		if idx%2 == 1 {
			for i, j := 0, len(part)-1; i < j; i, j = i+1, j-1 {
				part[i], part[j] = part[j], part[i]
			}
		}
	})
}

// SliceFactor scales the number of STR slices by Num/Den, for the ablation
// that checks S = ceil(sqrt(P)) is the right slice count in 2-D. Factor
// 1/1 reproduces STR exactly.
type SliceFactor struct {
	Num, Den int
	// Workers > 1 parallelizes the x-sort and runs slices concurrently;
	// the output is identical for every setting.
	Workers int
}

// Name implements rtree.Orderer.
func (f SliceFactor) Name() string { return "STRx" }

// Order implements rtree.Orderer.
func (f SliceFactor) Order(entries []node.Entry, n, level int) {
	if len(entries) < 2 {
		return
	}
	workers := normWorkers(f.Workers)
	num, den := f.Num, f.Den
	if num < 1 {
		num = 1
	}
	if den < 1 {
		den = 1
	}
	sortByCenter(entries, 0, workers)
	p := (len(entries) + n - 1) / n
	slices := ceilPow(p, 0.5) * num / den
	if slices < 1 {
		slices = 1
	}
	slab := (len(entries) + slices - 1) / slices
	// Round the slab to whole nodes so only the final node per slice can
	// be short.
	slab = ((slab + n - 1) / n) * n
	forEachSlab(len(entries), slab, workers, func(start, end, _ int) {
		sortByCenter(entries[start:end], 1, 1)
	})
}
