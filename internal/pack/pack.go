// Package pack implements the three R-tree packing algorithms the STR
// paper compares — Sort-Tile-Recursive (the paper's contribution),
// Nearest-X [Roussopoulos & Leifker 85] and Hilbert Sort [Kamel &
// Faloutsos 93] — plus two ablation orderings used by the repository's
// extra benchmarks.
//
// Each algorithm is an rtree.Orderer: it permutes the entries of one tree
// level into the sequence in which the builder cuts them into nodes of
// capacity n. Per the paper (Section 2.2) "the three algorithms differ
// only in how the rectangles are ordered at each level"; the surrounding
// bottom-up build is shared and lives in internal/rtree.
package pack

import (
	"math"
	"sort"
	"sync"

	"strtree/internal/hilbert"
	"strtree/internal/node"
)

// NX is the Nearest-X packing order: rectangles sorted by the x-coordinate
// of their centers ("No details are given in the paper so we assume that
// the x-coordinate of the rectangle's center is used"). Cheap to build, but
// it packs long skinny nodes with huge perimeters, which is why the paper
// finds it uncompetitive for region queries.
type NX struct{}

// Name implements rtree.Orderer.
func (NX) Name() string { return "NX" }

// Order implements rtree.Orderer.
func (NX) Order(entries []node.Entry, n, level int) {
	sortByCenter(entries, 0)
}

// YSort orders by the y-coordinate of the centers. It is NX rotated 90
// degrees, included as an ablation control: any difference between NX and
// YSort on a data set measures the set's axis anisotropy, not algorithm
// quality.
type YSort struct{}

// Name implements rtree.Orderer.
func (YSort) Name() string { return "Y" }

// Order implements rtree.Orderer.
func (YSort) Order(entries []node.Entry, n, level int) {
	if len(entries) < 2 {
		return
	}
	sortByCenter(entries, len(entries[0].Rect.Min)-1)
}

func sortByCenter(entries []node.Entry, axis int) {
	if len(entries) < 2 {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Rect.CenterAxis(axis) < entries[j].Rect.CenterAxis(axis)
	})
}

// HS is the Hilbert-Sort packing order: rectangle centers sorted by their
// distance from the origin along the Hilbert curve. The curve grid is
// fitted to the bounding box of the centers at each level, realizing the
// paper's arbitrarily-fine conceptual grid for float coordinates.
type HS struct {
	// MaxOrder caps the curve order (bits per axis). Zero means the finest
	// order whose index fits in 64 bits (31 for 2-D data).
	MaxOrder int
	// Exact switches 2-D data to the paper's lazy bitwise comparison at 52
	// bits per axis — "one does not store or compute all bit values on the
	// hypothetical grid" — so points closer than the 31-bit grid still
	// order correctly. Ignored for other dimensionalities.
	Exact bool
}

// Name implements rtree.Orderer.
func (HS) Name() string { return "HS" }

// Order implements rtree.Orderer.
func (h HS) Order(entries []node.Entry, n, level int) {
	if len(entries) < 2 {
		return
	}
	dims := entries[0].Rect.Dim()
	if h.Exact && dims == 2 {
		h.orderExact2D(entries)
		return
	}
	order := 64 / dims
	if order > 31 {
		order = 31
	}
	if h.MaxOrder > 0 && h.MaxOrder < order {
		order = h.MaxOrder
	}
	// Fit the grid to the centers.
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	center := make([]float64, dims)
	for d := 0; d < dims; d++ {
		lo[d] = math.Inf(1)
		hi[d] = math.Inf(-1)
	}
	for i := range entries {
		for d := 0; d < dims; d++ {
			c := entries[i].Rect.CenterAxis(d)
			lo[d] = math.Min(lo[d], c)
			hi[d] = math.Max(hi[d], c)
		}
	}
	m, err := hilbert.NewMapper(order, lo, hi)
	if err != nil {
		// Bounds come from the data itself, so this is unreachable for
		// valid entries; fall back to NX rather than corrupt the build.
		sortByCenter(entries, 0)
		return
	}
	keys := make([]uint64, len(entries))
	cell := make([]uint32, dims)
	for i := range entries {
		for d := 0; d < dims; d++ {
			center[d] = entries[i].Rect.CenterAxis(d)
		}
		m.CellInto(center, cell)
		keys[i] = hilbert.Index(order, cell)
	}
	sort.Sort(&keyed{keys: keys, entries: entries})
}

// orderExact2D sorts by curve position using lazy 52-bit comparison, the
// paper's in-practice method for arbitrary float coordinates.
func (h HS) orderExact2D(entries []node.Entry) {
	const order = 52 // float64 mantissa precision
	lo := [2]float64{math.Inf(1), math.Inf(1)}
	hi := [2]float64{math.Inf(-1), math.Inf(-1)}
	for i := range entries {
		for d := 0; d < 2; d++ {
			c := entries[i].Rect.CenterAxis(d)
			lo[d] = math.Min(lo[d], c)
			hi[d] = math.Max(hi[d], c)
		}
	}
	cells := float64(uint64(1)<<order - 1)
	scale := [2]float64{}
	for d := 0; d < 2; d++ {
		if ext := hi[d] - lo[d]; ext > 0 {
			scale[d] = cells / ext
		}
	}
	cell := func(e *node.Entry, d int) uint64 {
		v := (e.Rect.CenterAxis(d) - lo[d]) * scale[d]
		switch {
		case v <= 0:
			return 0
		case v >= cells:
			return uint64(cells)
		default:
			return uint64(v)
		}
	}
	// Precompute the grid cells once, then sort with the lazy comparator.
	xs := make([]uint64, len(entries))
	ys := make([]uint64, len(entries))
	for i := range entries {
		xs[i] = cell(&entries[i], 0)
		ys[i] = cell(&entries[i], 1)
	}
	sort.Sort(&cellKeyed{xs: xs, ys: ys, entries: entries})
}

// cellKeyed sorts entries by Hilbert curve position of parallel cell
// coordinates, compared lazily.
type cellKeyed struct {
	xs, ys  []uint64
	entries []node.Entry
}

func (c *cellKeyed) Len() int { return len(c.xs) }
func (c *cellKeyed) Less(i, j int) bool {
	return hilbert.Compare2D(52, c.xs[i], c.ys[i], c.xs[j], c.ys[j]) < 0
}
func (c *cellKeyed) Swap(i, j int) {
	c.xs[i], c.xs[j] = c.xs[j], c.xs[i]
	c.ys[i], c.ys[j] = c.ys[j], c.ys[i]
	c.entries[i], c.entries[j] = c.entries[j], c.entries[i]
}

// keyed sorts entries by parallel precomputed keys.
type keyed struct {
	keys    []uint64
	entries []node.Entry
}

func (k *keyed) Len() int           { return len(k.keys) }
func (k *keyed) Less(i, j int) bool { return k.keys[i] < k.keys[j] }
func (k *keyed) Swap(i, j int) {
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
	k.entries[i], k.entries[j] = k.entries[j], k.entries[i]
}

// STR is the paper's Sort-Tile-Recursive packing order.
//
// For k = 2 (paper Section 2.2): with P = ceil(r/n) leaf pages, sort the
// rectangles by the x-coordinate of their centers and cut them into
// S = ceil(sqrt(P)) vertical slices of S*n consecutive rectangles; then
// sort each slice by y. The builder's subsequent grouping into runs of n
// realizes the tiling. For k > 2 the first coordinate splits the input
// into S = ceil(P^(1/k)) slabs of n*ceil(P^((k-1)/k)) rectangles, each
// processed recursively as a (k-1)-dimensional data set.
type STR struct {
	// Workers > 1 sorts slabs concurrently (the parallel packing the
	// paper's future-work section anticipates). Slab contents are
	// independent after the partitioning sort, so the resulting order is
	// identical to the sequential one.
	Workers int
}

// Name implements rtree.Orderer.
func (STR) Name() string { return "STR" }

// Order implements rtree.Orderer.
func (s STR) Order(entries []node.Entry, n, level int) {
	if len(entries) < 2 {
		return
	}
	if n < 1 {
		//strlint:ignore panics documented contract: a capacity below 1 is a builder bug, not a data condition
		panic("pack: node capacity < 1")
	}
	s.tile(entries, n, 0, entries[0].Rect.Dim())
}

// tile applies the STR step for one axis and recurses on each slab.
func (s STR) tile(entries []node.Entry, n, axis, dims int) {
	rem := dims - axis // coordinates still to process
	if rem <= 1 {
		sortByCenter(entries, axis)
		return
	}
	sortByCenter(entries, axis)
	p := (len(entries) + n - 1) / n // pages needed for this set
	// Slab size: n * ceil(P^((rem-1)/rem)) consecutive rectangles.
	slab := n * ceilPow(p, float64(rem-1)/float64(rem))
	if slab < n {
		slab = n
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.workers())
	for start := 0; start < len(entries); start += slab {
		end := start + slab
		if end > len(entries) {
			end = len(entries)
		}
		part := entries[start:end]
		if s.workers() == 1 {
			s.tile(part, n, axis+1, dims)
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			s.tile(part, n, axis+1, dims)
			<-sem
		}()
	}
	wg.Wait()
}

func (s STR) workers() int {
	if s.Workers < 1 {
		return 1
	}
	return s.Workers
}

// ceilPow returns ceil(p^e) guarded against floating-point error for exact
// powers (e.g. 100^0.5 must be exactly 10, not 11).
func ceilPow(p int, e float64) int {
	return int(math.Ceil(math.Pow(float64(p), e) - 1e-9))
}

// Serpentine is STR with the y-order reversed in every other slice, so the
// packing order snakes through the tiles instead of jumping from the top
// of one slice to the bottom of the next. It is a natural locality
// refinement of STR (in the spirit of the paper's future-work search for
// better orders) and is measured by the ablation benchmarks. Only the 2-D
// case differs from STR; higher dimensions fall back to plain STR.
type Serpentine struct{}

// Name implements rtree.Orderer.
func (Serpentine) Name() string { return "STR-serp" }

// Order implements rtree.Orderer.
func (Serpentine) Order(entries []node.Entry, n, level int) {
	if len(entries) < 2 {
		return
	}
	if entries[0].Rect.Dim() != 2 {
		STR{}.Order(entries, n, level)
		return
	}
	sortByCenter(entries, 0)
	p := (len(entries) + n - 1) / n
	slab := n * ceilPow(p, 0.5)
	flip := false
	for start := 0; start < len(entries); start += slab {
		end := start + slab
		if end > len(entries) {
			end = len(entries)
		}
		part := entries[start:end]
		sortByCenter(part, 1)
		if flip {
			for i, j := 0, len(part)-1; i < j; i, j = i+1, j-1 {
				part[i], part[j] = part[j], part[i]
			}
		}
		flip = !flip
	}
}

// SliceFactor scales the number of STR slices by Num/Den, for the ablation
// that checks S = ceil(sqrt(P)) is the right slice count in 2-D. Factor
// 1/1 reproduces STR exactly.
type SliceFactor struct {
	Num, Den int
}

// Name implements rtree.Orderer.
func (f SliceFactor) Name() string { return "STRx" }

// Order implements rtree.Orderer.
func (f SliceFactor) Order(entries []node.Entry, n, level int) {
	if len(entries) < 2 {
		return
	}
	num, den := f.Num, f.Den
	if num < 1 {
		num = 1
	}
	if den < 1 {
		den = 1
	}
	sortByCenter(entries, 0)
	p := (len(entries) + n - 1) / n
	slices := ceilPow(p, 0.5) * num / den
	if slices < 1 {
		slices = 1
	}
	slab := (len(entries) + slices - 1) / slices
	// Round the slab to whole nodes so only the final node per slice can
	// be short.
	slab = ((slab + n - 1) / n) * n
	for start := 0; start < len(entries); start += slab {
		end := start + slab
		if end > len(entries) {
			end = len(entries)
		}
		sortByCenter(entries[start:end], 1)
	}
}
