package pack

import (
	"math/rand"
	"testing"

	"strtree/internal/geom"
	"strtree/internal/node"
)

func partitionEntries(n int, seed int64) []node.Entry {
	rng := rand.New(rand.NewSource(seed))
	entries := make([]node.Entry, n)
	for i := range entries {
		x, y := rng.Float64(), rng.Float64()
		entries[i] = node.Entry{
			Rect: geom.Rect{Min: geom.Pt2(x, y), Max: geom.Pt2(x+0.01, y+0.01)},
			Ref:  uint64(i),
		}
	}
	return entries
}

func TestSTRPartitionShapes(t *testing.T) {
	cases := []struct {
		n, parts  int
		wantParts int
	}{
		{0, 4, 0},
		{1, 4, 1},   // fewer items than parts: one singleton part
		{3, 8, 3},   // parts capped at n
		{10, 4, 4},  // cap 3: parts 3,3,3,1
		{100, 1, 1}, // single part is the identity partition
		{1000, 7, 7},
	}
	for _, tc := range cases {
		entries := partitionEntries(tc.n, 1)
		bounds := STRPartition(entries, tc.parts, 1)
		if len(bounds) != tc.wantParts {
			t.Errorf("n=%d parts=%d: got %d parts, want %d", tc.n, tc.parts, len(bounds), tc.wantParts)
			continue
		}
		covered := 0
		maxSize := 0
		for i, b := range bounds {
			if b[0] != covered {
				t.Errorf("n=%d parts=%d: part %d starts at %d, want %d (contiguous cover)", tc.n, tc.parts, i, b[0], covered)
			}
			covered = b[1]
			if sz := b[1] - b[0]; sz > maxSize {
				maxSize = sz
			}
		}
		if covered != tc.n {
			t.Errorf("n=%d parts=%d: parts cover %d entries, want %d", tc.n, tc.parts, covered, tc.n)
		}
		if tc.n > 0 {
			cap := (tc.n + tc.parts - 1) / tc.parts
			if maxSize > cap {
				t.Errorf("n=%d parts=%d: largest part %d exceeds cap %d", tc.n, tc.parts, maxSize, cap)
			}
		}
	}
}

// TestSTRPartitionDeterministic pins the workers-independence contract:
// the reordered entries and the boundaries are identical at every worker
// count.
func TestSTRPartitionDeterministic(t *testing.T) {
	base := partitionEntries(5000, 42)
	ref := append([]node.Entry(nil), base...)
	refBounds := STRPartition(ref, 5, 1)
	for _, workers := range []int{2, 4, 8} {
		got := append([]node.Entry(nil), base...)
		gotBounds := STRPartition(got, 5, workers)
		if len(gotBounds) != len(refBounds) {
			t.Fatalf("workers=%d: %d parts, want %d", workers, len(gotBounds), len(refBounds))
		}
		for i := range refBounds {
			if gotBounds[i] != refBounds[i] {
				t.Fatalf("workers=%d: bounds[%d] = %v, want %v", workers, i, gotBounds[i], refBounds[i])
			}
		}
		for i := range ref {
			if got[i].Ref != ref[i].Ref || !got[i].Rect.Equal(ref[i].Rect) {
				t.Fatalf("workers=%d: entry %d differs from sequential order", workers, i)
			}
		}
	}
}

// TestSTRPartitionPreservesEntries verifies the partition is a
// permutation: every input entry appears exactly once in the output.
func TestSTRPartitionPreservesEntries(t *testing.T) {
	entries := partitionEntries(997, 7) // prime count: ragged last part
	STRPartition(entries, 6, 0)
	seen := make(map[uint64]bool, len(entries))
	for _, e := range entries {
		if seen[e.Ref] {
			t.Fatalf("entry %d duplicated by partition", e.Ref)
		}
		seen[e.Ref] = true
	}
	if len(seen) != 997 {
		t.Fatalf("partition kept %d distinct entries, want 997", len(seen))
	}
}
