package pack

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"strtree/internal/geom"
	"strtree/internal/node"
)

func uniformSquares(n int, seed int64) []node.Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]node.Entry, n)
	for i := range out {
		x, y := rng.Float64(), rng.Float64()
		s := rng.Float64() * 0.01
		r, _ := geom.NewRect(geom.Pt2(x, y), geom.Pt2(math.Min(x+s, 1), math.Min(y+s, 1)))
		out[i] = node.Entry{Rect: r, Ref: uint64(i)}
	}
	return out
}

// allOrderers lists every packing order for permutation-invariance tests.
func allOrderers() []interface {
	Order(entries []node.Entry, n, level int)
	Name() string
} {
	return []interface {
		Order(entries []node.Entry, n, level int)
		Name() string
	}{
		NX{}, YSort{}, HS{}, HS{Exact: true}, STR{}, STR{Workers: 4}, Serpentine{},
		SliceFactor{Num: 1, Den: 2}, SliceFactor{Num: 2, Den: 1},
		TGS{}, TGS{UseMargin: true},
	}
}

func TestOrdersArePermutations(t *testing.T) {
	base := uniformSquares(777, 1)
	for _, o := range allOrderers() {
		t.Run(o.Name(), func(t *testing.T) {
			entries := append([]node.Entry(nil), base...)
			o.Order(entries, 10, 0)
			if len(entries) != len(base) {
				t.Fatalf("length changed: %d", len(entries))
			}
			seen := make(map[uint64]bool, len(entries))
			for _, e := range entries {
				if seen[e.Ref] {
					t.Fatalf("ref %d duplicated", e.Ref)
				}
				seen[e.Ref] = true
				if !e.Rect.Equal(base[e.Ref].Rect) {
					t.Fatalf("ref %d rect mutated", e.Ref)
				}
			}
		})
	}
}

func TestOrderersTolerateTinyInputs(t *testing.T) {
	for _, o := range allOrderers() {
		o.Order(nil, 10, 0)
		one := uniformSquares(1, 2)
		o.Order(one, 10, 0)
		two := uniformSquares(2, 3)
		o.Order(two, 10, 0)
	}
}

func TestNXSortsByCenterX(t *testing.T) {
	entries := uniformSquares(200, 4)
	NX{}.Order(entries, 10, 0)
	for i := 1; i < len(entries); i++ {
		if entries[i].Rect.CenterAxis(0) < entries[i-1].Rect.CenterAxis(0) {
			t.Fatalf("not sorted by x at %d", i)
		}
	}
}

func TestYSortSortsByCenterY(t *testing.T) {
	entries := uniformSquares(200, 5)
	YSort{}.Order(entries, 10, 0)
	for i := 1; i < len(entries); i++ {
		if entries[i].Rect.CenterAxis(1) < entries[i-1].Rect.CenterAxis(1) {
			t.Fatalf("not sorted by y at %d", i)
		}
	}
}

// TestSTRTiling checks the exact tile structure on a perfect grid. With
// r = 256 points on a 16x16 grid and n = 16: P = 16 pages, S = ceil(sqrt(P))
// = 4 vertical slices of S*n = 64 points (4 grid columns each); the y sort
// within a slice then makes every node exactly one 4x4 block of the grid.
func TestSTRTiling(t *testing.T) {
	var entries []node.Entry
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			p := geom.Pt2(float64(x)/16+0.01, float64(y)/16+0.01)
			entries = append(entries, node.Entry{Rect: geom.PointRect(p), Ref: uint64(x*16 + y)})
		}
	}
	rand.New(rand.NewSource(6)).Shuffle(len(entries), func(i, j int) {
		entries[i], entries[j] = entries[j], entries[i]
	})
	const n = 16
	STR{}.Order(entries, n, 0)
	for i, e := range entries {
		nodeIdx := i / n
		wantSlice := nodeIdx / 4 // 4 row-blocks per slice
		wantBlock := nodeIdx % 4
		gx, gy := int(e.Ref)/16, int(e.Ref)%16
		if gx/4 != wantSlice || gy/4 != wantBlock {
			t.Fatalf("position %d (node %d): point (%d,%d) outside tile (slice %d, block %d)",
				i, nodeIdx, gx, gy, wantSlice, wantBlock)
		}
	}
}

// leafMBRStats packs ordered entries into nodes of n and sums the area and
// margin of the leaf MBRs — the paper's secondary metric.
func leafMBRStats(entries []node.Entry, n int) (area, margin float64) {
	for start := 0; start < len(entries); start += n {
		end := start + n
		if end > len(entries) {
			end = len(entries)
		}
		m := entries[start].Rect.Clone()
		for _, e := range entries[start+1 : end] {
			m.UnionInPlace(e.Rect)
		}
		area += m.Area()
		margin += m.Margin()
	}
	return area, margin
}

// TestSTRBeatsNXOnPerimeter reproduces the paper's Table 4 shape: on
// uniform data NX packs long skinny nodes with an order of magnitude more
// perimeter than STR.
func TestSTRBeatsNXOnPerimeter(t *testing.T) {
	base := uniformSquares(20000, 7)
	nx := append([]node.Entry(nil), base...)
	NX{}.Order(nx, 100, 0)
	_, nxMargin := leafMBRStats(nx, 100)

	str := append([]node.Entry(nil), base...)
	STR{}.Order(str, 100, 0)
	_, strMargin := leafMBRStats(str, 100)

	if nxMargin < 4*strMargin {
		t.Fatalf("NX margin %.1f should dwarf STR margin %.1f", nxMargin, strMargin)
	}
}

// TestSTRCompetitiveWithHSOnArea: on uniform data STR's leaf area should
// be no worse than HS's (the paper reports STR slightly smaller).
func TestSTRCompetitiveWithHSOnArea(t *testing.T) {
	base := uniformSquares(5000, 8)
	hs := append([]node.Entry(nil), base...)
	HS{}.Order(hs, 100, 0)
	hsArea, _ := leafMBRStats(hs, 100)

	str := append([]node.Entry(nil), base...)
	STR{}.Order(str, 100, 0)
	strArea, _ := leafMBRStats(str, 100)

	if strArea > hsArea*1.1 {
		t.Fatalf("STR area %.3f much worse than HS area %.3f", strArea, hsArea)
	}
}

func TestHSFollowsHilbertOrder(t *testing.T) {
	// For points on a 4x4 grid in the unit square, HS must order them
	// along the order-2 Hilbert curve (the mapper is fitted to the
	// centers, so cell boundaries align with the grid).
	var entries []node.Entry
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			p := geom.Pt2(float64(x)/3, float64(y)/3)
			entries = append(entries, node.Entry{Rect: geom.PointRect(p), Ref: uint64(x*4 + y)})
		}
	}
	rand.New(rand.NewSource(9)).Shuffle(len(entries), func(i, j int) {
		entries[i], entries[j] = entries[j], entries[i]
	})
	HS{}.Order(entries, 4, 0)
	// Consecutive points along a Hilbert order are adjacent grid cells.
	for i := 1; i < len(entries); i++ {
		ax, ay := int(entries[i-1].Ref)/4, int(entries[i-1].Ref)%4
		bx, by := int(entries[i].Ref)/4, int(entries[i].Ref)%4
		d := (ax-bx)*(ax-bx) + (ay-by)*(ay-by)
		if d != 1 {
			t.Fatalf("HS order jumps from (%d,%d) to (%d,%d)", ax, ay, bx, by)
		}
	}
}

func TestParallelSTRMatchesSequential(t *testing.T) {
	base := uniformSquares(10007, 10)
	seq := append([]node.Entry(nil), base...)
	STR{}.Order(seq, 64, 0)
	par := append([]node.Entry(nil), base...)
	STR{Workers: 8}.Order(par, 64, 0)
	for i := range seq {
		if seq[i].Ref != par[i].Ref {
			t.Fatalf("parallel order diverges at %d", i)
		}
	}
}

func TestSTR3D(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var entries []node.Entry
	for i := 0; i < 3000; i++ {
		p := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		entries = append(entries, node.Entry{Rect: geom.PointRect(p), Ref: uint64(i)})
	}
	str := append([]node.Entry(nil), entries...)
	STR{}.Order(str, 27, 0)
	strArea, strMargin := leafMBRStats(str, 27)

	nx := append([]node.Entry(nil), entries...)
	NX{}.Order(nx, 27, 0)
	_, nxMargin := leafMBRStats(nx, 27)

	// Area is not discriminating for dense point sets (both packings tile
	// the whole cube), but NX's flat slabs have far larger total margin.
	if strMargin >= nxMargin/2 {
		t.Fatalf("3-D STR margin %.3g should be well below NX margin %.3g", strMargin, nxMargin)
	}
	_ = strArea
}

func TestSerpentineMatchesSTRTiles(t *testing.T) {
	// Serpentine must produce the same node contents as STR (same tiles),
	// only the within-level order of some slices reversed. Compare the
	// sets of node memberships.
	base := uniformSquares(2000, 12)
	const n = 50
	str := append([]node.Entry(nil), base...)
	STR{}.Order(str, n, 0)
	serp := append([]node.Entry(nil), base...)
	Serpentine{}.Order(serp, n, 0)

	nodeSet := func(entries []node.Entry) map[uint64]int {
		m := make(map[uint64]int)
		for i, e := range entries {
			m[e.Ref] = i / n
		}
		return m
	}
	a, b := nodeSet(str), nodeSet(serp)
	// Every STR node must map to exactly one serpentine node.
	pairing := map[int]int{}
	for ref, na := range a {
		nb := b[ref]
		if prev, ok := pairing[na]; ok && prev != nb {
			t.Fatalf("STR node %d split across serpentine nodes %d and %d", na, prev, nb)
		}
		pairing[na] = nb
	}
}

func TestSliceFactorUnitIsSTRQuality(t *testing.T) {
	base := uniformSquares(5000, 13)
	const n = 100
	str := append([]node.Entry(nil), base...)
	STR{}.Order(str, n, 0)
	strArea, _ := leafMBRStats(str, n)

	sf := append([]node.Entry(nil), base...)
	SliceFactor{Num: 1, Den: 1}.Order(sf, n, 0)
	sfArea, _ := leafMBRStats(sf, n)

	if math.Abs(strArea-sfArea) > strArea*0.05 {
		t.Fatalf("SliceFactor 1/1 area %.4f differs from STR %.4f", sfArea, strArea)
	}
	// Doubling or halving the slice count should not beat STR by much on
	// uniform data (S = sqrt(P) is the right choice).
	for _, f := range []SliceFactor{{Num: 2, Den: 1}, {Num: 1, Den: 2}} {
		alt := append([]node.Entry(nil), base...)
		f.Order(alt, n, 0)
		altArea, _ := leafMBRStats(alt, n)
		if altArea < strArea*0.9 {
			t.Fatalf("slice factor %d/%d area %.4f beats STR %.4f by >10%%",
				f.Num, f.Den, altArea, strArea)
		}
	}
}

func TestNames(t *testing.T) {
	want := map[string]string{
		NX{}.Name():          "NX",
		YSort{}.Name():       "Y",
		HS{}.Name():          "HS",
		STR{}.Name():         "STR",
		Serpentine{}.Name():  "STR-serp",
		SliceFactor{}.Name(): "STRx",
	}
	for got, exp := range want {
		if got != exp {
			t.Fatalf("name %q != %q", got, exp)
		}
	}
}

func TestHSExactMatchesKeyedOnCoarseData(t *testing.T) {
	// On data whose centers fall exactly on a coarse grid both variants
	// produce the same node memberships (key collisions are absent).
	var entries []node.Entry
	for x := 0; x < 32; x++ {
		for y := 0; y < 32; y++ {
			p := geom.Pt2(float64(x)/31, float64(y)/31)
			entries = append(entries, node.Entry{Rect: geom.PointRect(p), Ref: uint64(x*32 + y)})
		}
	}
	const n = 16
	a := append([]node.Entry(nil), entries...)
	HS{}.Order(a, n, 0)
	b := append([]node.Entry(nil), entries...)
	HS{Exact: true}.Order(b, n, 0)
	for i := range a {
		if a[i].Ref != b[i].Ref {
			t.Fatalf("orders diverge at %d: %d vs %d", i, a[i].Ref, b[i].Ref)
		}
	}
}

func TestHSExactResolvesSubgridTies(t *testing.T) {
	// Points packed within one cell of the default 31-bit grid: the keyed
	// variant sees identical keys; the exact comparator still orders them
	// along the curve (verified via permutation + determinism).
	base := geom.Pt2(0.5, 0.5)
	var entries []node.Entry
	for i := 0; i < 64; i++ {
		p := geom.Pt2(base[0]+float64(i)*1e-14, base[1]+float64(i%8)*1e-14)
		entries = append(entries, node.Entry{Rect: geom.PointRect(p), Ref: uint64(i)})
	}
	a := append([]node.Entry(nil), entries...)
	HS{Exact: true}.Order(a, 8, 0)
	b := append([]node.Entry(nil), entries...)
	HS{Exact: true}.Order(b, 8, 0)
	for i := range a {
		if a[i].Ref != b[i].Ref {
			t.Fatalf("exact order not deterministic at %d", i)
		}
	}
}

func TestHSMaxOrderOverride(t *testing.T) {
	entries := uniformSquares(500, 14)
	coarse := append([]node.Entry(nil), entries...)
	HS{MaxOrder: 2}.Order(coarse, 10, 0) // 4x4 grid: heavy key collisions, still a valid permutation
	seen := map[uint64]bool{}
	for _, e := range coarse {
		if seen[e.Ref] {
			t.Fatal("duplicate after coarse HS")
		}
		seen[e.Ref] = true
	}
}

func TestSTRSortedWithinSlices(t *testing.T) {
	entries := uniformSquares(5000, 15)
	const n = 100
	STR{}.Order(entries, n, 0)
	p := (len(entries) + n - 1) / n
	slab := n * int(math.Ceil(math.Sqrt(float64(p))))
	for start := 0; start < len(entries); start += slab {
		end := start + slab
		if end > len(entries) {
			end = len(entries)
		}
		if !sort.SliceIsSorted(entries[start:end], func(i, j int) bool {
			return entries[start+i].Rect.CenterAxis(1) < entries[start+j].Rect.CenterAxis(1)
		}) {
			t.Fatalf("slice starting at %d not sorted by y", start)
		}
	}
}

func BenchmarkSTROrder100k(b *testing.B) {
	base := uniformSquares(100000, 16)
	work := make([]node.Entry, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		STR{}.Order(work, 100, 0)
	}
}

func BenchmarkSTRParallelOrder100k(b *testing.B) {
	base := uniformSquares(100000, 16)
	work := make([]node.Entry, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		STR{Workers: 8}.Order(work, 100, 0)
	}
}

func BenchmarkHSOrder100k(b *testing.B) {
	base := uniformSquares(100000, 16)
	work := make([]node.Entry, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		HS{}.Order(work, 100, 0)
	}
}

func BenchmarkNXOrder100k(b *testing.B) {
	base := uniformSquares(100000, 16)
	work := make([]node.Entry, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		NX{}.Order(work, 100, 0)
	}
}
