package pack

// This file exports the STR slab partitioning one level above page
// packing: splitting a whole dataset into a small number of spatial
// shards, each destined for its own index file and server process. The
// partition is exactly the paper's Sort-Tile-Recursive tiling with the
// "node capacity" set to the shard size, so shards inherit STR's
// properties — tight, near-disjoint MBRs and balanced counts — which is
// what makes shard-MBR pruning effective in the fan-out router.

import "strtree/internal/node"

// STRPartition reorders entries in place exactly as the STR packing sort
// would for a node capacity of ceil(len(entries)/parts), and returns the
// boundaries of the resulting parts: part i is entries[b[i][0]:b[i][1]].
// Parts are contiguous STR tiles in tiling order, each holding at most
// ceil(len(entries)/parts) entries; at most `parts` parts are returned
// (fewer when len(entries) < parts). The order is identical for every
// workers setting (0 = GOMAXPROCS), the PR-4 determinism contract.
func STRPartition(entries []node.Entry, parts, workers int) [][2]int {
	n := len(entries)
	if n == 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	per := (n + parts - 1) / parts
	STR{Workers: workers}.Order(entries, per, 0)
	bounds := make([][2]int, 0, (n+per-1)/per)
	for start := 0; start < n; start += per {
		end := start + per
		if end > n {
			end = n
		}
		bounds = append(bounds, [2]int{start, end})
	}
	return bounds
}
