package pack

import (
	"math"
	"sync"

	"strtree/internal/geom"
	"strtree/internal/node"
)

// TGS is the Top-down Greedy Split bulk-loading order of García, López
// and Leutenegger (CIKM 1998) — the algorithm the STR paper's conclusion
// anticipates ("we plan to continue our search for a better packing
// algorithm"; TGS was that search's result, by two of the same authors).
//
// Where STR tiles bottom-up by sorting, TGS works top-down: to pack a set
// needing more than one node it repeatedly applies the best *binary*
// split — over every axis ordering and every node-aligned split point —
// minimizing the total cost of the two resulting MBRs, then recurses on
// both halves. The result here is expressed as a leaf ordering (the
// recursion flattened left to right), so it plugs into the same General
// Algorithm builder as the other packers; applying it at every level
// reproduces the top-down structure.
type TGS struct {
	// UseMargin selects perimeter as the split cost instead of area.
	// García et al. examine both; area is the default.
	UseMargin bool
	// Workers > 1 parallelizes the candidate-cut sorts and recurses on
	// the two halves concurrently; the output is identical for every
	// setting because the halves are disjoint after the cut.
	Workers int
}

// Name implements rtree.Orderer.
func (t TGS) Name() string {
	if t.UseMargin {
		return "TGS-margin"
	}
	return "TGS"
}

// Order implements rtree.Orderer.
func (t TGS) Order(entries []node.Entry, n, level int) {
	if len(entries) < 2 {
		return
	}
	if n < 1 {
		//strlint:ignore panics documented contract: a capacity below 1 is a builder bug, not a data condition
		panic("pack: node capacity < 1")
	}
	t.split(entries, n, normWorkers(t.Workers))
}

// split recursively partitions entries (destined for ceil(len/n) nodes)
// until each partition fits one node. The two halves are disjoint, so
// they recurse concurrently when workers remain.
func (t TGS) split(entries []node.Entry, n, workers int) {
	if len(entries) <= n {
		return
	}
	// Split points must keep the left side a multiple of the node size so
	// packed nodes stay full.
	cut := t.bestCut(entries, n, workers)
	left, right := entries[:cut], entries[cut:]
	if workers > 1 && len(left) > n && len(right) > n {
		lw := workers / 2
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.split(left, n, lw)
		}()
		t.split(right, n, workers-lw)
		wg.Wait()
		return
	}
	t.split(left, n, workers)
	t.split(right, n, workers)
}

// bestCut reorders entries along the best axis and returns the best
// node-aligned split position.
func (t TGS) bestCut(entries []node.Entry, n, workers int) int {
	dims := entries[0].Rect.Dim()
	nodes := (len(entries) + n - 1) / n
	// Candidate cuts: multiples of n. To bound the O(axes * cuts * N)
	// prefix work we precompute prefix/suffix MBRs per ordering.
	bestAxis, bestCutIdx := 0, 1
	bestCost := math.Inf(1)
	for d := 0; d < dims; d++ {
		sortByCenter(entries, d, workers)
		prefix := prefixMBRs(entries, n)
		suffix := suffixMBRs(entries, n)
		for k := 1; k < nodes; k++ {
			cost := t.cost(prefix[k-1]) + t.cost(suffix[k])
			if cost < bestCost {
				bestCost = cost
				bestAxis, bestCutIdx = d, k
			}
		}
	}
	if bestAxis != dims-1 {
		// Entries are currently sorted by the last axis examined; restore
		// the winning order.
		sortByCenter(entries, bestAxis, workers)
	}
	return bestCutIdx * n
}

func (t TGS) cost(r geom.Rect) float64 {
	if t.UseMargin {
		return r.Margin()
	}
	return r.Area()
}

// prefixMBRs returns, for each node-aligned prefix (first k*n entries,
// k = 1..nodes-?), the MBR of that prefix. prefix[i] covers entries
// [0, (i+1)*n).
func prefixMBRs(entries []node.Entry, n int) []geom.Rect {
	nodes := (len(entries) + n - 1) / n
	out := make([]geom.Rect, 0, nodes-1)
	cur := entries[0].Rect.Clone()
	for i := 1; i < len(entries); i++ {
		if i%n == 0 {
			out = append(out, cur.Clone())
		}
		cur.UnionInPlace(entries[i].Rect)
	}
	return out
}

// suffixMBRs returns suffix MBRs aligned the same way: suffix[k] covers
// entries [k*n, len).
func suffixMBRs(entries []node.Entry, n int) []geom.Rect {
	nodes := (len(entries) + n - 1) / n
	out := make([]geom.Rect, nodes)
	cur := entries[len(entries)-1].Rect.Clone()
	next := nodes - 1
	for i := len(entries) - 1; i >= 0; i-- {
		cur.UnionInPlace(entries[i].Rect)
		if i == next*n {
			out[next] = cur.Clone()
			next--
		}
	}
	return out
}
