// Top-level benchmark harness: one testing.B benchmark per table and
// figure of the STR paper (each runs the corresponding experiment at a
// reduced scale and reports the key access counts as custom metrics), plus
// the ablation benchmarks DESIGN.md Section 6 calls out. Run with
//
//	go test -bench=. -benchmem
//
// For paper-scale numbers use cmd/strbench -full instead; benchmarks stay
// small so the whole suite finishes in minutes.
package strtree_test

import (
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"

	"strtree"
	"strtree/internal/buffer"
	"strtree/internal/datagen"
	"strtree/internal/experiments"
	"strtree/internal/node"
	"strtree/internal/pack"
	"strtree/internal/query"
	"strtree/internal/rtree"
	"strtree/internal/storage"
)

// benchCfg is the reduced scale used by every per-table benchmark.
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.05, Queries: 100, Capacity: 100, Seed: 1}
}

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	runner, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)  { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)  { benchExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B)  { benchExperiment(b, "table8") }
func BenchmarkTable9(b *testing.B)  { benchExperiment(b, "table9") }
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "table10") }
func BenchmarkFig7(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)   { benchExperiment(b, "fig12") }

// accessesPerQuery builds a packed tree over entries behind bufPages of
// LRU and measures mean disk accesses for the workload.
func accessesPerQuery(b *testing.B, entries []node.Entry, o rtree.Orderer, capacity, bufPages int, qs []strtree.Rect) float64 {
	b.Helper()
	tr, err := experiments.BuildPacked(entries, o, bufPages, capacity)
	if err != nil {
		b.Fatal(err)
	}
	acc, err := experiments.AvgAccesses(tr, qs)
	if err != nil {
		b.Fatal(err)
	}
	return acc
}

// BenchmarkAblationPackers compares every packing order, including the
// repository's serpentine extension and the Y-sort control, on uniform
// density-5 data with 1% region queries and a small buffer.
func BenchmarkAblationPackers(b *testing.B) {
	b.ReportAllocs()
	entries := datagen.UniformSquares(20000, 5.0, 1)
	qs := query.Regions(200, query.Extent1Pct, 2)
	orders := []rtree.Orderer{
		pack.STR{}, pack.Serpentine{}, pack.TGS{}, pack.HS{}, pack.NX{}, pack.YSort{},
	}
	for _, o := range orders {
		b.Run(o.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = accessesPerQuery(b, entries, o, 100, 10, qs)
			}
			b.ReportMetric(acc, "accesses/query")
		})
	}
}

// BenchmarkAblationSliceCount checks the paper's S = ceil(sqrt(P)) slice
// choice against halved and doubled slice counts.
func BenchmarkAblationSliceCount(b *testing.B) {
	b.ReportAllocs()
	entries := datagen.UniformSquares(20000, 5.0, 1)
	qs := query.Regions(200, query.Extent1Pct, 2)
	factors := []pack.SliceFactor{
		{Num: 1, Den: 2}, {Num: 1, Den: 1}, {Num: 2, Den: 1},
	}
	for _, f := range factors {
		b.Run("S*"+strconv.Itoa(f.Num)+"/"+strconv.Itoa(f.Den), func(b *testing.B) {
			b.ReportAllocs()
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = accessesPerQuery(b, entries, f, 100, 10, qs)
			}
			b.ReportMetric(acc, "accesses/query")
		})
	}
}

// BenchmarkAblationFanout varies node capacity (the paper fixes n = 100
// and notes most R-trees use 25-100).
func BenchmarkAblationFanout(b *testing.B) {
	b.ReportAllocs()
	entries := datagen.UniformSquares(20000, 5.0, 1)
	qs := query.Regions(200, query.Extent1Pct, 2)
	for _, capacity := range []int{25, 50, 100} {
		b.Run(strconv.Itoa(capacity), func(b *testing.B) {
			b.ReportAllocs()
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = accessesPerQuery(b, entries, pack.STR{}, capacity, 10, qs)
			}
			b.ReportMetric(acc, "accesses/query")
		})
	}
}

// BenchmarkAblationPinning contrasts plain LRU with pinning all internal
// levels resident — the policy the paper discusses and sets aside in
// Section 3.
func BenchmarkAblationPinning(b *testing.B) {
	b.ReportAllocs()
	entries := datagen.UniformSquares(20000, 5.0, 1)
	qs := query.Regions(200, query.Extent1Pct, 2)
	build := func(bufPages int) *rtree.Tree {
		tr, err := experiments.BuildPacked(entries, pack.STR{}, bufPages, 100)
		if err != nil {
			b.Fatal(err)
		}
		return tr
	}
	run := func(b *testing.B, tr *rtree.Tree) float64 {
		acc, err := experiments.AvgAccesses(tr, qs)
		if err != nil {
			b.Fatal(err)
		}
		return acc
	}
	b.Run("lru", func(b *testing.B) {
		b.ReportAllocs()
		tr := build(10)
		var acc float64
		for i := 0; i < b.N; i++ {
			acc = run(b, tr)
		}
		b.ReportMetric(acc, "accesses/query")
	})
	b.Run("pin-internal", func(b *testing.B) {
		b.ReportAllocs()
		tr := build(10)
		// Collect internal pages and pin them after the cold start.
		var internal []storage.PageID
		if err := tr.Walk(func(id storage.PageID, n *node.Node) bool {
			if !n.IsLeaf() {
				internal = append(internal, id)
			}
			return true
		}); err != nil {
			b.Fatal(err)
		}
		var acc float64
		for i := 0; i < b.N; i++ {
			if err := tr.Pool().Invalidate(); err != nil {
				b.Fatal(err)
			}
			if err := tr.Pool().SetResident(internal); err != nil {
				b.Fatal(err)
			}
			tr.Pool().ResetStats()
			for _, q := range qs {
				if err := tr.Search(q, func(node.Entry) bool { return true }); err != nil {
					b.Fatal(err)
				}
			}
			acc = float64(tr.Pool().Stats().DiskReads) / float64(len(qs))
		}
		b.ReportMetric(acc, "accesses/query")
	})
}

// BenchmarkPackedVsDynamic measures the paper's motivating comparison:
// bulk loading versus Guttman insertion, on build time and query I/O.
func BenchmarkPackedVsDynamic(b *testing.B) {
	b.ReportAllocs()
	entries := datagen.UniformSquares(10000, 5.0, 1)
	items := make([]strtree.Item, len(entries))
	for i, e := range entries {
		items[i] = strtree.Item{Rect: e.Rect, ID: e.Ref}
	}
	qs := query.Regions(200, query.Extent1Pct, 2)

	b.Run("build/packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree, err := strtree.New(strtree.Options{Capacity: 100})
			if err != nil {
				b.Fatal(err)
			}
			if err := tree.BulkLoad(items, strtree.PackSTR); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("build/dynamic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree, err := strtree.New(strtree.Options{Capacity: 100, BufferPages: 2048})
			if err != nil {
				b.Fatal(err)
			}
			for _, it := range items {
				if err := tree.Insert(it.Rect, it.ID); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	queryBench := func(b *testing.B, tree *strtree.Tree) {
		var acc float64
		for i := 0; i < b.N; i++ {
			if err := tree.DropCaches(); err != nil {
				b.Fatal(err)
			}
			tree.ResetStats()
			for _, q := range qs {
				if _, err := tree.Count(q); err != nil {
					b.Fatal(err)
				}
			}
			acc = float64(tree.Stats().DiskReads) / float64(len(qs))
		}
		b.ReportMetric(acc, "accesses/query")
	}
	b.Run("query/packed", func(b *testing.B) {
		b.ReportAllocs()
		tree, err := strtree.New(strtree.Options{Capacity: 100, BufferPages: 10})
		if err != nil {
			b.Fatal(err)
		}
		if err := tree.BulkLoad(items, strtree.PackSTR); err != nil {
			b.Fatal(err)
		}
		queryBench(b, tree)
	})
	b.Run("query/dynamic", func(b *testing.B) {
		b.ReportAllocs()
		tree, err := strtree.New(strtree.Options{Capacity: 100, BufferPages: 10})
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range items {
			if err := tree.Insert(it.Rect, it.ID); err != nil {
				b.Fatal(err)
			}
		}
		queryBench(b, tree)
	})
}

// BenchmarkAblationSplits compares the dynamic split heuristics (linear,
// quadratic, R*) on insert throughput and resulting query cost.
func BenchmarkAblationSplits(b *testing.B) {
	b.ReportAllocs()
	entries := datagen.UniformSquares(5000, 5.0, 1)
	qs := query.Regions(200, query.Extent1Pct, 2)
	for _, split := range []rtree.SplitAlgorithm{rtree.SplitLinear, rtree.SplitQuadratic, rtree.SplitRStar} {
		b.Run(split.String(), func(b *testing.B) {
			b.ReportAllocs()
			var acc float64
			for i := 0; i < b.N; i++ {
				pool := buffer.NewPool(storage.NewMemPager(4096), 4096)
				tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: 100, Split: split})
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range entries {
					if err := tr.Insert(e.Rect, e.Ref); err != nil {
						b.Fatal(err)
					}
				}
				acc, err = experiments.AvgAccesses(tr, qs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(acc, "accesses/query")
		})
	}
}

// BenchmarkAblationReplacement compares LRU against its Clock
// approximation at the paper's small-buffer operating point.
func BenchmarkAblationReplacement(b *testing.B) {
	b.ReportAllocs()
	entries := datagen.UniformSquares(20000, 5.0, 1)
	qs := query.Regions(200, query.Extent1Pct, 2)
	for _, policy := range []buffer.Policy{buffer.LRU, buffer.Clock} {
		b.Run(policy.String(), func(b *testing.B) {
			b.ReportAllocs()
			pool := buffer.NewPoolWithPolicy(storage.NewMemPager(4096), 10, policy)
			tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: 100})
			if err != nil {
				b.Fatal(err)
			}
			cp := make([]node.Entry, len(entries))
			copy(cp, entries)
			if err := tr.BulkLoad(cp, pack.STR{}); err != nil {
				b.Fatal(err)
			}
			var acc float64
			for i := 0; i < b.N; i++ {
				acc, err = experiments.AvgAccesses(tr, qs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(acc, "accesses/query")
		})
	}
}

// BenchmarkExternalBulkLoad measures the bounded-memory STR build against
// the in-memory build on the same input.
func BenchmarkExternalBulkLoad(b *testing.B) {
	b.ReportAllocs()
	entries := datagen.UniformSquares(50000, 5.0, 1)
	items := make([]strtree.Item, len(entries))
	for i, e := range entries {
		items[i] = strtree.Item{Rect: e.Rect, ID: e.Ref}
	}
	b.Run("in-memory", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree, err := strtree.New(strtree.Options{Capacity: 100})
			if err != nil {
				b.Fatal(err)
			}
			if err := tree.BulkLoad(append([]strtree.Item(nil), items...), strtree.PackSTR); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("external", func(b *testing.B) {
		b.ReportAllocs()
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			tree, err := strtree.New(strtree.Options{Capacity: 100})
			if err != nil {
				b.Fatal(err)
			}
			j := 0
			src := func() (strtree.Item, bool) {
				if j >= len(items) {
					return strtree.Item{}, false
				}
				it := items[j]
				j++
				return it, true
			}
			if err := tree.BulkLoadExternal(src, strtree.ExternalOptions{RunSize: 8192, TmpDir: dir}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensions runs the beyond-the-paper experiments.
func BenchmarkExtensions(b *testing.B) {
	for _, id := range experiments.ExtensionIDs() {
		b.Run(id, func(b *testing.B) { benchExperiment(b, id) })
	}
}

// BenchmarkBuild measures end-to-end bulk-load throughput — parallel
// sort, tiling and write-behind page emission — through the in-memory STR
// pipeline. Run with -cpu 1,4,8 to see worker scaling; the tree bytes are
// identical at every width.
func BenchmarkBuild(b *testing.B) {
	b.ReportAllocs()
	entries := datagen.UniformSquares(200000, 5.0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workers := runtime.GOMAXPROCS(0)
		pool := buffer.NewPool(storage.NewMemPager(storage.DefaultPageSize), 1024)
		tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: 100, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		cp := make([]node.Entry, len(entries))
		copy(cp, entries)
		if err := tr.BulkLoad(cp, pack.STR{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(entries))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mentries/s")
}

// BenchmarkBuildExternal measures the bounded-memory pipeline: concurrent
// run generation and spilling, merge read-ahead, and write-behind leaves.
// Run with -cpu 1,4,8.
func BenchmarkBuildExternal(b *testing.B) {
	b.ReportAllocs()
	entries := datagen.UniformSquares(100000, 5.0, 1)
	items := make([]strtree.Item, len(entries))
	for i, e := range entries {
		items[i] = strtree.Item{Rect: strtree.Rect(e.Rect), ID: e.Ref}
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := strtree.New(strtree.Options{Capacity: 100})
		if err != nil {
			b.Fatal(err)
		}
		j := 0
		src := func() (strtree.Item, bool) {
			if j >= len(items) {
				return strtree.Item{}, false
			}
			it := items[j]
			j++
			return it, true
		}
		if err := tree.BulkLoadExternal(src, strtree.ExternalOptions{RunSize: 1 << 14, TmpDir: dir}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(items))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mentries/s")
}

// BenchmarkParallelSTR measures the goroutine-parallel STR sort, the
// parallel direction the paper's conclusion proposes.
func BenchmarkParallelSTR(b *testing.B) {
	b.ReportAllocs()
	entries := datagen.UniformSquares(200000, 5.0, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(strconv.Itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			work := make([]node.Entry, len(entries))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, entries)
				pack.STR{Workers: workers}.Order(work, 100, 0)
			}
		})
	}
}

// concurrentBenchTree builds the shared fixture for the concurrent-query
// benchmarks: a packed 50k-entry tree behind a buffer of the given shard
// count, with a warm start so the steady-state hit/miss mix is measured.
func concurrentBenchTree(b *testing.B, shards int, qs []strtree.Rect) *strtree.Tree {
	b.Helper()
	entries := datagen.UniformSquares(50000, 5.0, 1)
	items := make([]strtree.Item, len(entries))
	for i, e := range entries {
		items[i] = strtree.Item{Rect: e.Rect, ID: e.Ref}
	}
	tree, err := strtree.New(strtree.Options{Capacity: 100, BufferPages: 256, BufferShards: shards})
	if err != nil {
		b.Fatal(err)
	}
	if err := tree.BulkLoad(items, strtree.PackSTR); err != nil {
		b.Fatal(err)
	}
	if err := tree.DropCaches(); err != nil {
		b.Fatal(err)
	}
	if _, err := tree.SearchBatchCount(qs, 1); err != nil {
		b.Fatal(err)
	}
	tree.ResetStats()
	return tree
}

// BenchmarkConcurrentQuery measures parallel query throughput through one
// shared tree and buffer; one op is one region query. Run with
// -cpu 1,4,8 to see scaling: the sharded variants keep scaling with
// GOMAXPROCS while shards=1 serializes every page fetch behind a single
// buffer mutex. Each parallel goroutine walks the query set from its own
// offset so concurrent workers touch different subtrees, like independent
// clients would.
func BenchmarkConcurrentQuery(b *testing.B) {
	b.ReportAllocs()
	qs := query.Regions(512, query.Extent1Pct, 2)
	for _, shards := range []int{1, 8, 32} {
		b.Run("shards="+strconv.Itoa(shards), func(b *testing.B) {
			b.ReportAllocs()
			tree := concurrentBenchTree(b, shards, qs)
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(next.Add(int64(len(qs) / 8)))
				for pb.Next() {
					q := qs[i%len(qs)]
					i++
					if err := tree.Search(q, func(strtree.Item) bool { return true }); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			if n := tree.Stats().LogicalReads; n > 0 {
				b.ReportMetric(float64(tree.Stats().DiskReads)/float64(b.N), "accesses/query")
			}
		})
	}
}

// BenchmarkConcurrentQueryBatch measures the BatchExecutor end to end: one
// op is a 256-query batch fanned across GOMAXPROCS workers. Run with
// -cpu 1,4,8.
func BenchmarkConcurrentQueryBatch(b *testing.B) {
	b.ReportAllocs()
	qs := query.Regions(256, query.Extent1Pct, 3)
	for _, shards := range []int{1, 16} {
		b.Run("shards="+strconv.Itoa(shards), func(b *testing.B) {
			b.ReportAllocs()
			tree := concurrentBenchTree(b, shards, qs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tree.SearchBatchCount(qs, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSTR3D exercises the k > 2 generalization of Section 2.2.
func BenchmarkSTR3D(b *testing.B) {
	b.ReportAllocs()
	rngEntries := make([]node.Entry, 0, 50000)
	base := datagen.UniformPoints(50000, 1)
	// Lift 2-D points into 3-D with a z coordinate derived from the index.
	for i, e := range base {
		z := float64(i%1000) / 1000
		r := strtree.Rect{
			Min: strtree.Point{e.Rect.Min[0], e.Rect.Min[1], z},
			Max: strtree.Point{e.Rect.Max[0], e.Rect.Max[1], z},
		}
		rngEntries = append(rngEntries, node.Entry{Rect: r, Ref: e.Ref})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := buffer.NewPool(storage.NewMemPager(4096), 1024)
		tr, err := rtree.Create(pool, rtree.Config{Dims: 3, Capacity: 72})
		if err != nil {
			b.Fatal(err)
		}
		cp := make([]node.Entry, len(rngEntries))
		copy(cp, rngEntries)
		if err := tr.BulkLoad(cp, pack.STR{}); err != nil {
			b.Fatal(err)
		}
	}
}
