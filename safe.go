package strtree

import "sync"

// SafeTree wraps a Tree with a readers-writer lock so one writer and many
// readers can share it from multiple goroutines. Reads (Search, Nearest,
// Count, ...) take the read lock; mutations take the write lock. For
// read-heavy workloads where even read-lock contention matters, prefer
// per-goroutine read-only Views.
//
// Note that the buffer pool beneath a SafeTree is shared, so concurrent
// readers contend on its mutex too; the lock here adds correctness for
// mixed read/write use, not parallel speed-up.
type SafeTree struct {
	mu   sync.RWMutex
	tree *Tree
}

// NewSafe wraps an existing tree. The caller must stop using the inner
// tree directly.
func NewSafe(tree *Tree) *SafeTree { return &SafeTree{tree: tree} }

// BulkLoad locks out all access and bulk-loads the tree.
func (s *SafeTree) BulkLoad(items []Item, p Packing) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.BulkLoad(items, p)
}

// Insert adds one item under the write lock.
func (s *SafeTree) Insert(r Rect, id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Insert(r, id)
}

// Delete removes one item under the write lock.
func (s *SafeTree) Delete(r Rect, id uint64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Delete(r, id)
}

// Search streams intersecting items under the read lock. The callback
// must not call mutating methods on the same SafeTree (it would deadlock).
func (s *SafeTree) Search(q Rect, fn func(Item) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Search(q, fn)
}

// SearchWithin streams contained items under the read lock.
func (s *SafeTree) SearchWithin(q Rect, fn func(Item) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.SearchWithin(q, fn)
}

// SearchPoint streams items containing p under the read lock.
func (s *SafeTree) SearchPoint(p Point, fn func(Item) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.SearchPoint(p, fn)
}

// Count counts intersecting items under the read lock.
func (s *SafeTree) Count(q Rect) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Count(q)
}

// All collects intersecting items under the read lock.
func (s *SafeTree) All(q Rect) ([]Item, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.All(q)
}

// Nearest streams items by distance under the read lock.
func (s *SafeTree) Nearest(p Point, fn func(Item, float64) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Nearest(p, fn)
}

// NearestK returns the k nearest items under the read lock.
func (s *SafeTree) NearestK(p Point, k int) ([]Item, []float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.NearestK(p, k)
}

// Len returns the item count under the read lock.
func (s *SafeTree) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Len()
}

// Height returns the level count under the read lock.
func (s *SafeTree) Height() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Height()
}

// Flush writes dirty state under the write lock.
func (s *SafeTree) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Flush()
}

// Validate checks invariants under the read lock.
func (s *SafeTree) Validate() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Validate()
}

// Close closes the underlying tree under the write lock.
func (s *SafeTree) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Close()
}

// Unwrap returns the inner tree for operations SafeTree does not expose.
// The caller is responsible for synchronization while using it.
func (s *SafeTree) Unwrap() *Tree { return s.tree }
