package strtree

import (
	"testing"
)

type city struct {
	Name string
	Pop  int
}

func TestCollectionBasics(t *testing.T) {
	c, err := NewCollection[city](Options{})
	if err != nil {
		t.Fatal(err)
	}
	id1, err := c.Add(PointRect(Pt2(0.1, 0.1)), city{"Alpha", 1000})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c.Add(PointRect(Pt2(0.9, 0.9)), city{"Beta", 2000})
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("ids not unique")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	got, ok := c.Get(id1)
	if !ok || got.Name != "Alpha" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	// Search returns the payloads.
	found := map[string]bool{}
	if err := c.Search(R2(0, 0, 1, 1), func(id uint64, r Rect, v city) bool {
		found[v.Name] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found["Alpha"] || !found["Beta"] {
		t.Fatalf("search found %v", found)
	}
	// Restricted window sees one.
	n := 0
	if err := c.Search(R2(0, 0, 0.5, 0.5), func(uint64, Rect, city) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("window found %d", n)
	}
}

func TestCollectionUpdateMoveRemove(t *testing.T) {
	c, err := NewCollection[string](Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Add(R2(0.1, 0.1, 0.2, 0.2), "original")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Update(id, "updated") {
		t.Fatal("update failed")
	}
	if v, _ := c.Get(id); v != "updated" {
		t.Fatalf("value = %q", v)
	}
	if c.Update(999, "x") {
		t.Fatal("update of missing id succeeded")
	}
	// Move: old location no longer matches, new one does.
	if err := c.Move(id, R2(0.8, 0.8, 0.9, 0.9)); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := c.Search(R2(0, 0, 0.5, 0.5), func(uint64, Rect, string) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("item still at old location")
	}
	if err := c.Search(R2(0.7, 0.7, 1, 1), func(uint64, Rect, string) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatal("item not at new location")
	}
	if err := c.Move(999, R2(0, 0, 1, 1)); err == nil {
		t.Fatal("move of missing id succeeded")
	}
	// Remove.
	ok, err := c.Remove(id)
	if err != nil || !ok {
		t.Fatalf("remove: %v %v", ok, err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after remove", c.Len())
	}
	ok, err = c.Remove(id)
	if err != nil || ok {
		t.Fatal("double remove succeeded")
	}
}

func TestCollectionBulkAdd(t *testing.T) {
	c, err := NewCollection[int](Options{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	var rects []Rect
	var vals []int
	for i := 0; i < 500; i++ {
		x := float64(i%25) / 25
		y := float64(i/25) / 25
		rects = append(rects, R2(x, y, x+0.01, y+0.01))
		vals = append(vals, i*i)
	}
	ids, err := c.BulkAdd(rects, vals, PackSTR)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 500 || c.Len() != 500 {
		t.Fatalf("ids %d len %d", len(ids), c.Len())
	}
	if v, ok := c.Get(ids[42]); !ok || v != 42*42 {
		t.Fatalf("payload %d mismatch: %d", 42, v)
	}
	if err := c.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	// kNN through the collection.
	nnIDs, nnVals, err := c.NearestK(Pt2(0.5, 0.5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nnIDs) != 3 || len(nnVals) != 3 {
		t.Fatalf("kNN sizes %d/%d", len(nnIDs), len(nnVals))
	}
	for i, id := range nnIDs {
		if want, _ := c.Get(id); want != nnVals[i] {
			t.Fatalf("kNN value mismatch at %d", i)
		}
	}
	// Errors.
	if _, err := c.BulkAdd(rects, vals[:10], PackSTR); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := c.BulkAdd(rects, vals, PackSTR); err == nil {
		t.Fatal("bulk add on non-empty collection accepted")
	}
}
