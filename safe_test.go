package strtree

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestSafeTreeMixedReadersAndWriter(t *testing.T) {
	inner, err := New(Options{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSafe(inner)
	items := randItems(500, 71)
	if err := s.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errs := make(chan error, 16)

	// One writer churning balanced inserts and deletes until told to stop.
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		extra := randItems(500, 72)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			it := extra[i%len(extra)]
			id := uint64(10000 + i)
			if err := s.Insert(it.Rect, id); err != nil {
				errs <- err
				return
			}
			if _, err := s.Delete(it.Rect, id); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Several readers doing a fixed amount of work.
	var readerWG sync.WaitGroup
	for r := 0; r < 6; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < 300; i++ {
				q := R2(0.1, 0.1, 0.6, 0.6)
				if _, err := s.Count(q); err != nil {
					errs <- err
					return
				}
				if _, _, err := s.NearestK(Pt2(0.5, 0.5), 3); err != nil {
					errs <- err
					return
				}
				n := 0
				if err := s.Search(q, func(Item) bool { n++; return n < 50 }); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 500 {
		t.Fatalf("Len = %d after balanced insert/delete churn", s.Len())
	}
	if s.Height() < 2 {
		t.Fatalf("height = %d", s.Height())
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Unwrap() != inner {
		t.Fatal("Unwrap lost the tree")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSafeTreeCoverageOfReadPaths(t *testing.T) {
	s := NewSafe(mustTree(t, Options{}))
	if err := s.Insert(R2(0.1, 0.1, 0.3, 0.3), 5); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Count(R2(0, 0, 1, 1)); err != nil || n != 1 {
		t.Fatalf("count %d err %v", n, err)
	}
	all, err := s.All(R2(0, 0, 1, 1))
	if err != nil || len(all) != 1 {
		t.Fatalf("all %v err %v", all, err)
	}
	hits := 0
	if err := s.SearchPoint(Pt2(0.2, 0.2), func(Item) bool { hits++; return true }); err != nil || hits != 1 {
		t.Fatalf("point hits %d err %v", hits, err)
	}
	within := 0
	if err := s.SearchWithin(R2(0, 0, 0.5, 0.5), func(Item) bool { within++; return true }); err != nil || within != 1 {
		t.Fatalf("within %d err %v", within, err)
	}
	nn := 0
	if err := s.Nearest(Pt2(0.9, 0.9), func(Item, float64) bool { nn++; return false }); err != nil || nn != 1 {
		t.Fatalf("nearest %d err %v", nn, err)
	}
}

func mustTree(t *testing.T, opts Options) *Tree {
	t.Helper()
	tree, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestDeleteRange(t *testing.T) {
	tree := mustTree(t, Options{Capacity: 16})
	items := randItems(600, 73)
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}
	q := R2(0.25, 0.25, 0.75, 0.75)
	want, err := tree.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := tree.DeleteRange(q)
	if err != nil {
		t.Fatal(err)
	}
	if removed != want {
		t.Fatalf("removed %d, expected %d", removed, want)
	}
	if left, err := tree.Count(q); err != nil || left != 0 {
		t.Fatalf("range not emptied: %d err %v", left, err)
	}
	if tree.Len() != 600-removed {
		t.Fatalf("Len = %d", tree.Len())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Read-only views refuse.
	v, err := tree.View(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.DeleteRange(q); err != ErrReadOnly {
		t.Fatalf("view DeleteRange: %v", err)
	}
}

func TestSaveTo(t *testing.T) {
	tree := mustTree(t, Options{Capacity: 16})
	items := randItems(400, 74)
	for _, it := range items {
		if err := tree.Insert(it.Rect, it.ID); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "backup.str")
	if err := tree.SaveTo(path, PackSTR); err != nil {
		t.Fatal(err)
	}
	// Original unchanged.
	if tree.Len() != 400 {
		t.Fatalf("original len = %d", tree.Len())
	}
	re, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 400 || re.Capacity() != 16 {
		t.Fatalf("backup len %d cap %d", re.Len(), re.Capacity())
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := tree.Count(R2(0.2, 0.2, 0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := re.Count(R2(0.2, 0.2, 0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("backup answers differ: %d vs %d", a, b)
	}
}

func TestDumpDOT(t *testing.T) {
	tree := mustTree(t, Options{Capacity: 4})
	if err := tree.BulkLoad(randItems(64, 75), PackSTR); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.DumpDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "digraph rtree {") || !strings.HasSuffix(strings.TrimSpace(s), "}") {
		t.Fatal("not a DOT document")
	}
	// 64 items at capacity 4: 16 leaves + 4 internal + root = 21 nodes.
	if got := strings.Count(s, "[label="); got != 21 {
		t.Fatalf("dot shows %d nodes, want 21", got)
	}
	if got := strings.Count(s, "->"); got != 20 {
		t.Fatalf("dot shows %d edges, want 20", got)
	}
}
