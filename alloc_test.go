package strtree

// Allocation-regression gate at the public API level: steady-state Search
// and Count through the strtree wrappers must not allocate. The same gate
// exists inside internal/rtree (TestSearchZeroAlloc there); this level
// additionally catches regressions in the root wrappers — a closure that
// starts escaping, a stats path that starts boxing — that the inner gate
// cannot see.

import (
	"testing"
)

// zeroAllocTree builds a packed 2-d tree big enough to be multi-level,
// with a buffer pool that holds every page, and runs one warm-up query so
// the traverser pool and the buffer are both hot.
func zeroAllocTree(tb testing.TB) *Tree {
	tb.Helper()
	tr, err := New(Options{Dims: 2, Capacity: 102, BufferPages: 512})
	if err != nil {
		tb.Fatal(err)
	}
	if err := tr.BulkLoad(randItems(20000, 1), PackSTR); err != nil {
		tb.Fatal(err)
	}
	if _, err := tr.Count(R2(0, 0, 1, 1)); err != nil {
		tb.Fatal(err)
	}
	return tr
}

// searchAllocsPerRun measures allocations per warm Search and Count.
func searchAllocsPerRun(tb testing.TB, tr *Tree) (searchAllocs, countAllocs float64) {
	tb.Helper()
	q := R2(0.3, 0.3, 0.6, 0.6)
	found := 0
	searchAllocs = testing.AllocsPerRun(50, func() {
		found = 0
		if err := tr.Search(q, func(Item) bool { found++; return true }); err != nil {
			tb.Fatal(err)
		}
	})
	if found == 0 {
		tb.Fatal("query matched nothing; the gate exercised no emission path")
	}
	countAllocs = testing.AllocsPerRun(50, func() {
		if _, err := tr.Count(q); err != nil {
			tb.Fatal(err)
		}
	})
	return searchAllocs, countAllocs
}

// TestSearchViewZeroAlloc enforces the acceptance criterion in CI ("View"
// in the name places it in check.sh's root race list, where it skips:
// allocation counts are meaningless under the race detector).
func TestSearchViewZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	tr := zeroAllocTree(t)
	defer func() {
		if err := tr.Close(); err != nil {
			t.Error(err)
		}
	}()
	searchAllocs, countAllocs := searchAllocsPerRun(t, tr)
	if searchAllocs != 0 {
		t.Errorf("warm Search allocated %.1f times per query, want 0", searchAllocs)
	}
	if countAllocs != 0 {
		t.Errorf("warm Count allocated %.1f times per query, want 0", countAllocs)
	}
}

// TestSearchMutatedViewZeroAlloc is the write path's read-side guarantee:
// a tree that has been mutated (in-place appends, patched MBRs, splits,
// condensations) and re-verified must serve warm Search and Count at zero
// allocations per query, exactly like a freshly packed one. "Mutate" and
// "View" in the name place it in check.sh's root race list, where the
// alloc assertion skips.
func TestSearchMutatedViewZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	tr := zeroAllocTree(t)
	defer func() {
		if err := tr.Close(); err != nil {
			t.Error(err)
		}
	}()
	// Churn the tree: enough inserts to split leaves and enough deletes
	// to patch MBRs in place, then prove it is still structurally sound.
	items := randItems(2000, 99)
	for _, it := range items {
		if err := tr.Insert(it.Rect, it.ID+1<<32); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range items[:1000] {
		found, err := tr.Delete(it.Rect, it.ID+1<<32)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("churn delete of id %d not found", it.ID)
		}
	}
	ms := tr.MutatePathStats()
	if ms.InPlaceInserts == 0 || ms.InPlaceDeletes == 0 {
		t.Fatalf("churn exercised no in-place mutations: %+v", ms)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("post-churn invariants: %v", err)
	}
	if _, err := tr.Count(R2(0, 0, 1, 1)); err != nil { // re-warm after churn
		t.Fatal(err)
	}
	searchAllocs, countAllocs := searchAllocsPerRun(t, tr)
	if searchAllocs != 0 {
		t.Errorf("warm Search on a mutated tree allocated %.1f times per query, want 0", searchAllocs)
	}
	if countAllocs != 0 {
		t.Errorf("warm Count on a mutated tree allocated %.1f times per query, want 0", countAllocs)
	}
}

// BenchmarkSearchZeroAlloc is the benchmark-suite guard: it fails outright
// if a steady-state Search or Count allocates, so an allocation regression
// breaks the bench job even when nobody inspects allocs/op columns.
func BenchmarkSearchZeroAlloc(b *testing.B) {
	tr := zeroAllocTree(b)
	defer func() {
		if err := tr.Close(); err != nil {
			b.Error(err)
		}
	}()
	if !raceEnabled {
		if searchAllocs, countAllocs := searchAllocsPerRun(b, tr); searchAllocs != 0 || countAllocs != 0 {
			b.Fatalf("steady-state allocations regressed: Search %.1f, Count %.1f allocs per query, want 0",
				searchAllocs, countAllocs)
		}
	}
	q := R2(0.3, 0.3, 0.6, 0.6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := tr.Search(q, func(Item) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
	}
}
