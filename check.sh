#!/bin/sh
# check.sh — the repository's extended tier-1 gate (see ROADMAP.md).
# Everything here must pass before a change lands:
#
#   1. gofmt          every .go file is formatted
#   2. go vet         the standard analyzer suite
#   3. go build       the whole module compiles
#   4. strlint        the repo's own static analyzer (internal/lint),
#                     all ten checks: float ==, dropped errors, library
#                     panics, loop-variable capture, cross-layer imports,
#                     map-order and time/rand determinism, guarded-by
#                     lock discipline, goroutine completion signals,
#                     context propagation — gated by the committed
#                     count-aware baseline (.strlint-baseline.json)
#   5. go test        the full test suite (includes the invariant
#                     verifier's corrupted-tree fixtures and the fuzz
#                     seed corpora)
#   6. go test -race  the concurrency-sensitive packages: the buffer pool
#                     (incl. the sharded pool's eviction hammer and the
#                     write-pin protocol), the packers, the parallel sort
#                     kernel, the concurrent external sorter, the batch
#                     executor, the query server (admission, deadlines,
#                     drain, admin scrapes, mutation/query exclusion),
#                     the lock-free latency histogram, the metrics
#                     registry (updates racing expositions), the lint
#                     engine (parallel per-package driver), the fan-out
#                     router (scatter-gather, health probing, drain), the
#                     dynamic write path's differential oracle harness
#                     (internal/rtree …Mutate… and the root-package
#                     equivalent), and the root package's concurrent
#                     Search/SearchBatch tests. The zero-alloc gates
#                     (…View…, …Mutate…ZeroAlloc) run here for their
#                     traversal coverage but skip their allocation
#                     assertions: race instrumentation allocates.
#
# The script is plain POSIX sh with no interactive steps, so CI runs it
# verbatim (.github/workflows/ci.yml). It needs only a Go toolchain on
# PATH matching go.mod's directive (go >= 1.22; developed and CI-tested
# on go1.24).
set -eu
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== strlint"
go run ./cmd/strlint ./...

echo "== go test"
go test ./...

echo "== go test -race (buffer, pack, psort, extsort, query, server, router, histo, obs, lint, mutation oracle, concurrent root tests)"
go test -race ./internal/buffer/... ./internal/pack/... ./internal/psort/... ./internal/extsort/... ./internal/query/... ./internal/server/... ./internal/router/... ./internal/histo/... ./internal/obs/... ./internal/lint/...
go test -race -run 'Mutate' ./internal/rtree
go test -race -run 'Concurrent|Batch|Sharded|View|Mutate' .

echo "All checks passed."
