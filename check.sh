#!/bin/sh
# check.sh — the repository's extended tier-1 gate (see ROADMAP.md).
# Everything here must pass before a change lands:
#
#   1. gofmt          every .go file is formatted
#   2. go vet         the standard analyzer suite
#   3. go build       the whole module compiles
#   4. strlint        the repo's own static analyzer (internal/lint):
#                     float ==, dropped storage errors, library panics,
#                     loop-variable capture, cross-layer imports
#   5. go test        the full test suite (includes the invariant
#                     verifier's corrupted-tree fixtures and the fuzz
#                     seed corpora)
#   6. go test -race  the concurrency-sensitive packages
set -eu
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== strlint"
go run ./cmd/strlint ./...

echo "== go test"
go test ./...

echo "== go test -race (buffer, pack)"
go test -race ./internal/buffer/... ./internal/pack/...

echo "All checks passed."
