package strtree

import (
	"errors"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"testing"

	"strtree/internal/storage"
)

func TestLayersInMemory(t *testing.T) {
	ls, err := NewLayers(Options{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	parcels, err := ls.Create("parcels")
	if err != nil {
		t.Fatal(err)
	}
	roads, err := ls.Create("roads")
	if err != nil {
		t.Fatal(err)
	}
	if err := parcels.BulkLoad(randItems(300, 81), PackSTR); err != nil {
		t.Fatal(err)
	}
	for _, it := range randItems(200, 82) {
		if err := roads.Insert(it.Rect, it.ID); err != nil {
			t.Fatal(err)
		}
	}
	if parcels.Len() != 300 || roads.Len() != 200 {
		t.Fatalf("lens %d / %d", parcels.Len(), roads.Len())
	}
	if err := parcels.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := roads.Validate(); err != nil {
		t.Fatal(err)
	}
	// Both layers hold the universal invariants on the shared storage
	// (roads was insert-built, so only parcels is packed).
	if err := parcels.CheckPackedInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := roads.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Cross-layer join works on the shared storage.
	pairs := 0
	if err := Join(parcels, roads, func(a, b Item) bool { pairs++; return true }); err != nil {
		t.Fatal(err)
	}
	if pairs == 0 {
		t.Fatal("no cross-layer pairs on overlapping random data")
	}
	got := ls.Names()
	if len(got) != 2 || got[0] != "parcels" || got[1] != "roads" {
		t.Fatalf("Names = %v", got)
	}
}

func TestLayersPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "layers.str")
	ls, err := CreateLayers(path, Options{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ls.Create("alpha")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ls.Create("beta")
	if err != nil {
		t.Fatal(err)
	}
	itemsA := randItems(250, 83)
	itemsB := randItems(100, 84)
	if err := a.BulkLoad(itemsA, PackSTR); err != nil {
		t.Fatal(err)
	}
	if err := b.BulkLoad(itemsB, PackHilbert); err != nil {
		t.Fatal(err)
	}
	wantA, err := a.Count(R2(0.2, 0.2, 0.7, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenLayers(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if names := re.Names(); len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("reopened names = %v", names)
	}
	ra, err := re.Open("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if ra.Len() != 250 {
		t.Fatalf("alpha len = %d", ra.Len())
	}
	if err := ra.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := ra.Count(R2(0.2, 0.2, 0.7, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	if got != wantA {
		t.Fatalf("count after reopen = %d, want %d", got, wantA)
	}
	rb, err := re.Open("beta")
	if err != nil {
		t.Fatal(err)
	}
	if rb.Len() != 100 {
		t.Fatalf("beta len = %d", rb.Len())
	}
	// Repeated Open returns the same handle.
	rb2, err := re.Open("beta")
	if err != nil {
		t.Fatal(err)
	}
	if rb2 != rb {
		t.Fatal("Open created a second handle")
	}
}

func TestLayersErrors(t *testing.T) {
	ls, err := NewLayers(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Create(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := ls.Create(strings.Repeat("x", 40)); err == nil {
		t.Error("overlong name accepted")
	}
	if _, err := ls.Create("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Create("dup"); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := ls.Open("missing"); !errors.Is(err, ErrNoLayer) {
		t.Errorf("open missing: %v", err)
	}
	// Opening a non-layer file fails cleanly.
	path := filepath.Join(t.TempDir(), "plain.str")
	tree, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLayers(path, Options{}); err == nil {
		t.Error("plain index opened as layer set")
	}
}

func TestLayerCloseDoesNotKillSiblings(t *testing.T) {
	ls, err := NewLayers(Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ls.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ls.Create("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Insert(R2(0, 0, 0.1, 0.1), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Layer b keeps working after a's Close.
	if err := b.Insert(R2(0.5, 0.5, 0.6, 0.6), 2); err != nil {
		t.Fatal(err)
	}
	if n, err := b.Count(R2(0, 0, 1, 1)); err != nil || n != 1 {
		t.Fatalf("b count %d err %v", n, err)
	}
}

func TestLayersSharedStats(t *testing.T) {
	ls, err := NewLayers(Options{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ls.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.BulkLoad(randItems(1000, 85), PackSTR); err != nil {
		t.Fatal(err)
	}
	ls.ResetStats()
	if _, err := a.Count(R2(0.4, 0.4, 0.6, 0.6)); err != nil {
		t.Fatal(err)
	}
	if ls.Stats().LogicalReads == 0 {
		t.Fatal("layer reads not visible in set stats")
	}
}

// tracePager records the sequence of WritePage calls passing through it.
type tracePager struct {
	storage.Pager
	writes []storage.PageID
}

func (p *tracePager) WritePage(id storage.PageID, buf []byte) error {
	p.writes = append(p.writes, id)
	return p.Pager.WritePage(id, buf)
}

// TestLayersFlushOrderDeterministic is the regression test for Flush
// ranging the opened-layers map directly: the per-layer metadata writes
// must land in sorted name order no matter what order the layers were
// created in. Each layer's Flush re-dirties its meta page and writes it
// out immediately, so the last write of each meta page during
// LayerSet.Flush observes the layer iteration order.
func TestLayersFlushOrderDeterministic(t *testing.T) {
	sorted := []string{"aquifers", "bridges", "canals", "dams", "easements", "fences"}
	orders := [][]string{
		{"fences", "bridges", "easements", "aquifers", "dams", "canals"},
		{"canals", "dams", "aquifers", "easements", "bridges", "fences"},
		sorted,
	}
	for _, order := range orders {
		tp := &tracePager{Pager: storage.NewMemPager(4096)}
		opts := Options{Capacity: 16, Workers: 1}.withDefaults()
		ls, err := newLayerSet(tp, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, name := range order {
			tr, err := ls.Create(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, it := range randItems(20, int64(100+i)) {
				if err := tr.Insert(it.Rect, it.ID); err != nil {
					t.Fatal(err)
				}
			}
		}
		tp.writes = nil
		if err := ls.Flush(); err != nil {
			t.Fatal(err)
		}
		metaName := map[storage.PageID]string{}
		for name, id := range ls.catalog {
			metaName[id] = name
		}
		last := map[storage.PageID]int{}
		for i, id := range tp.writes {
			if _, ok := metaName[id]; ok {
				last[id] = i
			}
		}
		if len(last) != len(sorted) {
			t.Fatalf("create order %v: %d meta pages written during Flush, want %d", order, len(last), len(sorted))
		}
		type lastWrite struct {
			name string
			idx  int
		}
		var seq []lastWrite
		for id, i := range last {
			seq = append(seq, lastWrite{metaName[id], i})
		}
		sort.Slice(seq, func(a, b int) bool { return seq[a].idx < seq[b].idx })
		var got []string
		for _, lw := range seq {
			got = append(got, lw.name)
		}
		if !slices.Equal(got, sorted) {
			t.Errorf("create order %v: meta write order %v, want sorted %v", order, got, sorted)
		}
	}
}
