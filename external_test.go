package strtree

import (
	"testing"
)

func itemSource(items []Item) func() (Item, bool) {
	i := 0
	return func() (Item, bool) {
		if i >= len(items) {
			return Item{}, false
		}
		it := items[i]
		i++
		return it, true
	}
}

func TestBulkLoadExternalMatchesInMemory(t *testing.T) {
	items := randItems(8000, 61)
	inMem, err := New(Options{Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := inMem.BulkLoad(append([]Item(nil), items...), PackSTR); err != nil {
		t.Fatal(err)
	}

	ext, err := New(Options{Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	// RunSize 500 forces multiple spill runs for 8000 items.
	if err := ext.BulkLoadExternal(itemSource(items), ExternalOptions{RunSize: 500, TmpDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if ext.Len() != inMem.Len() || ext.Height() != inMem.Height() {
		t.Fatalf("external len %d height %d, in-memory len %d height %d",
			ext.Len(), ext.Height(), inMem.Len(), inMem.Height())
	}
	if err := ext.Validate(); err != nil {
		t.Fatal(err)
	}
	// The bounded-memory path must produce the same packed structure.
	if err := ext.CheckPackedInvariants(); err != nil {
		t.Fatal(err)
	}
	// Same structure quality: leaf metrics match the in-memory build.
	a, err := inMem.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ext.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if a.LeafNodes != b.LeafNodes {
		t.Fatalf("leaf nodes %d vs %d", a.LeafNodes, b.LeafNodes)
	}
	if diff := b.LeafArea - a.LeafArea; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("leaf areas differ: %g vs %g", a.LeafArea, b.LeafArea)
	}
	// Same answers.
	for _, q := range []Rect{R2(0, 0, 0.2, 0.9), R2(0.3, 0.3, 0.7, 0.7)} {
		ca, err := inMem.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := ext.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if ca != cb {
			t.Fatalf("counts for %v differ: %d vs %d", q, ca, cb)
		}
	}
}

func TestBulkLoadExternalGuards(t *testing.T) {
	tree, err := New(Options{Dims: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoadExternal(itemSource(nil), ExternalOptions{}); err == nil {
		t.Fatal("3-D external load accepted")
	}
	t2, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := t2.View(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.BulkLoadExternal(itemSource(nil), ExternalOptions{}); err != ErrReadOnly {
		t.Fatalf("view external load: %v", err)
	}
	// Non-empty tree rejected through the stream path too.
	if err := t2.Insert(R2(0, 0, 0.1, 0.1), 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.BulkLoadExternal(itemSource(randItems(10, 62)), ExternalOptions{RunSize: 4, TmpDir: t.TempDir()}); err == nil {
		t.Fatal("non-empty tree accepted")
	}
}

func TestBulkLoadExternalEmpty(t *testing.T) {
	tree, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoadExternal(itemSource(nil), ExternalOptions{}); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 0 {
		t.Fatalf("len = %d", tree.Len())
	}
}
