package strtree

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func randItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Item, n)
	for i := range out {
		x, y := rng.Float64(), rng.Float64()
		r, _ := NewRect(Pt2(x, y), Pt2(x+rng.Float64()*0.03, y+rng.Float64()*0.03))
		out[i] = Item{Rect: r, ID: uint64(i)}
	}
	return out
}

func TestQuickstartFlow(t *testing.T) {
	tree, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	items := randItems(5000, 1)
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 5000 || tree.Dims() != 2 || tree.Capacity() != 102 {
		t.Fatalf("len %d dims %d cap %d", tree.Len(), tree.Dims(), tree.Capacity())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckPackedInvariants(); err != nil {
		t.Fatal(err)
	}
	q := R2(0.4, 0.4, 0.6, 0.6)
	want := 0
	for _, it := range items {
		if q.Intersects(it.Rect) {
			want++
		}
	}
	got, err := tree.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	all, err := tree.All(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != want {
		t.Fatalf("All = %d items", len(all))
	}
}

func TestAllPackingsBuildEquivalentContent(t *testing.T) {
	items := randItems(2000, 2)
	q := R2(0.1, 0.1, 0.35, 0.35)
	var counts []int
	for _, p := range []Packing{PackSTR, PackHilbert, PackNearestX, PackSTRSerpentine, PackTGS} {
		tree, err := New(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.BulkLoad(items, p); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := tree.CheckPackedInvariants(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		c, err := tree.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, c)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("packings disagree on results: %v", counts)
		}
	}
}

func TestPackingString(t *testing.T) {
	cases := map[Packing]string{
		PackSTR: "STR", PackHilbert: "HS", PackNearestX: "NX",
		PackSTRSerpentine: "STR-serp", PackTGS: "TGS",
		Packing(99): "Packing(99)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestUnknownPackingRejected(t *testing.T) {
	tree, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(randItems(10, 3), Packing(99)); err == nil {
		t.Fatal("unknown packing accepted")
	}
}

func TestDynamicInsertDelete(t *testing.T) {
	tree, err := New(Options{Capacity: 16, Split: SplitQuadratic})
	if err != nil {
		t.Fatal(err)
	}
	items := randItems(500, 4)
	for _, it := range items {
		if err := tree.Insert(it.Rect, it.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, it := range items[:250] {
		ok, err := tree.Delete(it.Rect, it.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("item %d not deleted", it.ID)
		}
	}
	if tree.Len() != 250 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// The universal invariants (not the packed fill factor) must survive
	// arbitrary insert/delete churn.
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCountDiskAccesses(t *testing.T) {
	tree, err := New(Options{BufferPages: 8, Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(randItems(3000, 5), PackSTR); err != nil {
		t.Fatal(err)
	}
	if err := tree.DropCaches(); err != nil {
		t.Fatal(err)
	}
	tree.ResetStats()
	if _, err := tree.Count(R2(0.5, 0.5, 0.52, 0.52)); err != nil {
		t.Fatal(err)
	}
	s := tree.Stats()
	if s.DiskReads == 0 || s.LogicalReads < s.DiskReads {
		t.Fatalf("stats = %+v", s)
	}
	tree.ResetStats()
	if got := tree.Stats(); got != (IOStats{}) {
		t.Fatalf("stats after reset = %+v", got)
	}
}

func TestFileBackedCreateOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.str")
	tree, err := Create(path, Options{Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	items := randItems(1000, 6)
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}
	wantCount, err := tree.Count(R2(0, 0, 0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, Options{BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1000 || re.Capacity() != 32 {
		t.Fatalf("reopened len %d cap %d", re.Len(), re.Capacity())
	}
	got, err := re.Count(R2(0, 0, 0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got != wantCount {
		t.Fatalf("count after reopen = %d, want %d", got, wantCount)
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.str"), Options{}); err == nil {
		t.Fatal("missing file opened")
	}
}

func TestMetrics(t *testing.T) {
	tree, err := New(Options{Capacity: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(randItems(2500, 7), PackSTR); err != nil {
		t.Fatal(err)
	}
	m, err := tree.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.LeafNodes != 50 || m.Nodes != 51 {
		t.Fatalf("nodes %d leaves %d", m.Nodes, m.LeafNodes)
	}
	if m.LeafArea <= 0 || m.LeafPerimeter <= 0 {
		t.Fatalf("metrics %+v", m)
	}
	if m.TotalArea < m.LeafArea || m.TotalPerimeter < m.LeafPerimeter {
		t.Fatalf("totals below leaf values: %+v", m)
	}
}

func TestSearchPointPublic(t *testing.T) {
	tree, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(R2(0.1, 0.1, 0.2, 0.2), 42); err != nil {
		t.Fatal(err)
	}
	found := false
	if err := tree.SearchPoint(Pt2(0.15, 0.15), func(it Item) bool {
		found = it.ID == 42
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("point search missed the item")
	}
}

func TestPropPackedSearchMatchesBrute(t *testing.T) {
	items := randItems(1500, 8)
	tree, err := New(Options{Capacity: 25})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	f := func() bool {
		x, y := rng.Float64(), rng.Float64()
		e := rng.Float64() * 0.2
		q, _ := NewRect(Pt2(x, y), Pt2(min1(x+e), min1(y+e)))
		want := 0
		for _, it := range items {
			if q.Intersects(it.Rect) {
				want++
			}
		}
		got, err := tree.Count(q)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}
