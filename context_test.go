package strtree

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"strtree/internal/storage"
)

// buildCtxTree packs a small uniform tree for the context tests.
func buildCtxTree(t *testing.T) *Tree {
	t.Helper()
	tree, err := New(Options{Capacity: 16, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Item, 0, 900)
	for x := 0; x < 30; x++ {
		for y := 0; y < 30; y++ {
			items = append(items, Item{
				Rect: R2(float64(x)/30, float64(y)/30, float64(x)/30+0.02, float64(y)/30+0.02),
				ID:   uint64(x*30 + y),
			})
		}
	}
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestSearchContextMatchesSearch checks the context path returns exactly
// the plain path's results when the context never fires.
func TestSearchContextMatchesSearch(t *testing.T) {
	tree := buildCtxTree(t)
	defer func() { _ = tree.Close() }()
	q := R2(0.2, 0.2, 0.5, 0.5)
	want, err := tree.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.CountContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("CountContext = %d, Count = %d", got, want)
	}
	n := 0
	if err := tree.SearchContext(context.Background(), q, func(Item) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("SearchContext streamed %d items, want %d", n, want)
	}
}

// TestSearchContextCancelled checks a pre-cancelled context stops the
// traversal immediately with context.Canceled and touches no pages.
func TestSearchContextCancelled(t *testing.T) {
	tree := buildCtxTree(t)
	defer func() { _ = tree.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tree.ResetStats()
	err := tree.SearchContext(ctx, R2(0, 0, 1, 1), func(Item) bool { return true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if reads := tree.Stats().LogicalReads; reads != 0 {
		t.Fatalf("cancelled search still fetched %d pages", reads)
	}
}

// TestSearchContextDeadlineMidQuery cancels while streaming: the error
// surfaces and the traversal stops within one node visit.
func TestSearchContextDeadlineMidQuery(t *testing.T) {
	tree := buildCtxTree(t)
	defer func() { _ = tree.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	err := tree.SearchContext(ctx, R2(0, 0, 1, 1), func(Item) bool {
		n++
		if n == 10 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n < 10 || n >= tree.Len() {
		t.Fatalf("streamed %d items before cancellation took effect", n)
	}
}

func TestNearestKContext(t *testing.T) {
	tree := buildCtxTree(t)
	defer func() { _ = tree.Close() }()
	want, wantD, err := tree.NearestK(Pt2(0.5, 0.5), 5)
	if err != nil {
		t.Fatal(err)
	}
	got, gotD, err := tree.NearestKContext(context.Background(), Pt2(0.5, 0.5), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || gotD[i] != wantD[i] {
			t.Fatalf("result %d: got (%d, %v), want (%d, %v)", i, got[i].ID, gotD[i], want[i].ID, wantD[i])
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := tree.NearestKContext(ctx, Pt2(0.5, 0.5), 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled NearestKContext err = %v", err)
	}
}

// TestSearchBatchContext cross-checks the batch context path against
// SearchBatch and pins cancellation behavior.
func TestSearchBatchContext(t *testing.T) {
	tree := buildCtxTree(t)
	defer func() { _ = tree.Close() }()
	qs := []Rect{R2(0, 0, 0.3, 0.3), R2(0.4, 0.4, 0.6, 0.6), R2(0.9, 0.9, 1, 1)}
	want, err := tree.SearchBatch(qs, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.SearchBatchContext(context.Background(), qs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("query %d: %d matches, want %d", i, len(got[i]), len(want[i]))
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tree.SearchBatchContext(ctx, qs, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch err = %v", err)
	}
}

// TestSearchBatchCountTimed checks the latency hook fires once per query
// through the public wrapper.
func TestSearchBatchCountTimed(t *testing.T) {
	tree := buildCtxTree(t)
	defer func() { _ = tree.Close() }()
	qs := []Rect{R2(0, 0, 0.5, 0.5), R2(0.5, 0.5, 1, 1), R2(0, 0, 1, 1), R2(0.1, 0.1, 0.2, 0.2)}
	var observed atomic.Int64
	counts, err := tree.SearchBatchCountTimed(qs, 2, func(i int, d time.Duration) {
		observed.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if observed.Load() != int64(len(qs)) {
		t.Fatalf("%d observations for %d queries", observed.Load(), len(qs))
	}
	want, err := tree.SearchBatchCount(qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

// TestNewOnPager proves the pager-injection constructor builds a working
// tree on a wrapped (here: faulty, unarmed) pager and propagates injected
// failures through queries.
func TestNewOnPager(t *testing.T) {
	fp := storage.NewFaultyPager(storage.NewMemPager(4096))
	tree, err := NewOnPager(fp, Options{Capacity: 16, BufferPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tree.Close() }()
	items := make([]Item, 200)
	for i := range items {
		items[i] = Item{Rect: R2(float64(i), 0, float64(i)+1, 1), ID: uint64(i)}
	}
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}
	if n, err := tree.Count(R2(0, 0, 200, 1)); err != nil || n != 200 {
		t.Fatalf("count = %d, %v", n, err)
	}
	boom := errors.New("injected read failure")
	fp.FailReads(func(storage.PageID) error { return boom })
	if err := tree.DropCaches(); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Count(R2(0, 0, 200, 1)); !errors.Is(err, boom) {
		t.Fatalf("query err = %v, want injected failure", err)
	}
	fp.FailReads(nil)
}
