package strtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"

	"strtree/internal/buffer"
	"strtree/internal/rtree"
	"strtree/internal/storage"
)

// A LayerSet stores several independently named R-trees ("layers") in one
// page file sharing one buffer pool — the parcels / roads / flood-zones
// organization of a small spatial database. Layers are created and opened
// by name; cross-layer operations (Join, JoinWithin) work directly on the
// returned trees.
//
// A LayerSet is safe for single-goroutine use; concurrent queries across
// layers are safe as long as no layer is being mutated.
type LayerSet struct {
	pager   storage.Pager
	pool    *buffer.Pool
	opts    Options
	catalog map[string]storage.PageID
	opened  map[string]*Tree
}

const (
	layerMagic   uint32 = 0x4C525453 // "STRL"
	layerVersion byte   = 1
	layerNameMax        = 32
	layerHdrSize        = 8
	layerEntSize        = layerNameMax + 4
)

// ErrNoLayer is returned when opening a layer that does not exist.
var ErrNoLayer = errors.New("strtree: no such layer")

// NewLayers creates an empty in-memory layer set.
func NewLayers(opts Options) (*LayerSet, error) {
	opts = opts.withDefaults()
	return newLayerSet(storage.NewMemPager(opts.PageSize), opts)
}

// CreateLayers creates an empty layer set stored in a new file at path.
func CreateLayers(path string, opts Options) (*LayerSet, error) {
	opts = opts.withDefaults()
	pg, err := storage.CreateFilePager(path, opts.PageSize)
	if err != nil {
		return nil, err
	}
	ls, err := newLayerSet(pg, opts)
	if err != nil {
		return nil, errors.Join(err, pg.Close())
	}
	return ls, nil
}

func newLayerSet(pg storage.Pager, opts Options) (*LayerSet, error) {
	pool := buffer.NewPool(pg, opts.BufferPages)
	ls := &LayerSet{
		pager:   pg,
		pool:    pool,
		opts:    opts,
		catalog: map[string]storage.PageID{},
		opened:  map[string]*Tree{},
	}
	// Claim page 0 for the catalog.
	f, err := pool.Create()
	if err != nil {
		return nil, err
	}
	ls.encodeCatalog(f.Data())
	f.MarkDirty()
	pool.Release(f)
	return ls, nil
}

// OpenLayers opens a layer set written by CreateLayers. Only PageSize and
// BufferPages of opts are used for the file; structural options apply to
// layers created afterwards.
func OpenLayers(path string, opts Options) (*LayerSet, error) {
	opts = opts.withDefaults()
	pg, err := storage.OpenFilePager(path, opts.PageSize)
	if err != nil {
		return nil, err
	}
	pool := buffer.NewPool(pg, opts.BufferPages)
	ls := &LayerSet{
		pager:   pg,
		pool:    pool,
		opts:    opts,
		catalog: map[string]storage.PageID{},
		opened:  map[string]*Tree{},
	}
	f, err := pool.Fetch(0)
	if err != nil {
		return nil, errors.Join(err, pg.Close())
	}
	err = ls.decodeCatalog(f.Data())
	pool.Release(f)
	if err != nil {
		return nil, errors.Join(err, pg.Close())
	}
	return ls, nil
}

func (ls *LayerSet) encodeCatalog(page []byte) {
	binary.LittleEndian.PutUint32(page[0:], layerMagic)
	page[4] = layerVersion
	names := ls.names()
	binary.LittleEndian.PutUint16(page[6:], uint16(len(names)))
	off := layerHdrSize
	for _, name := range names {
		var buf [layerNameMax]byte
		copy(buf[:], name)
		copy(page[off:], buf[:])
		binary.LittleEndian.PutUint32(page[off+layerNameMax:], uint32(ls.catalog[name]))
		off += layerEntSize
	}
}

func (ls *LayerSet) decodeCatalog(page []byte) error {
	if len(page) < layerHdrSize || binary.LittleEndian.Uint32(page[0:]) != layerMagic {
		return fmt.Errorf("strtree: not a layer-set file")
	}
	if page[4] != layerVersion {
		return fmt.Errorf("strtree: unsupported layer-set version %d", page[4])
	}
	count := int(binary.LittleEndian.Uint16(page[6:]))
	if layerHdrSize+count*layerEntSize > len(page) {
		return fmt.Errorf("strtree: corrupt layer catalog")
	}
	off := layerHdrSize
	for i := 0; i < count; i++ {
		raw := page[off : off+layerNameMax]
		end := 0
		for end < len(raw) && raw[end] != 0 {
			end++
		}
		name := string(raw[:end])
		ls.catalog[name] = storage.PageID(binary.LittleEndian.Uint32(page[off+layerNameMax:]))
		off += layerEntSize
	}
	return nil
}

// writeCatalog persists the catalog to page 0.
func (ls *LayerSet) writeCatalog() error {
	f, err := ls.pool.Fetch(0)
	if err != nil {
		return err
	}
	ls.encodeCatalog(f.Data())
	f.MarkDirty()
	ls.pool.Release(f)
	return nil
}

func (ls *LayerSet) names() []string {
	out := make([]string, 0, len(ls.catalog))
	for name := range ls.catalog {
		out = append(out, name)
	}
	slices.Sort(out)
	return out
}

// Names lists the layers in the set, sorted.
func (ls *LayerSet) Names() []string { return ls.names() }

// Create adds a new empty layer and returns its tree. Structural options
// (Dims, Capacity, MinFill, Split, ForcedReinsert) come from the set's
// Options. The name must be non-empty, at most 32 bytes, and unused.
func (ls *LayerSet) Create(name string) (*Tree, error) {
	if name == "" || len(name) > layerNameMax {
		return nil, fmt.Errorf("strtree: invalid layer name %q", name)
	}
	if _, dup := ls.catalog[name]; dup {
		return nil, fmt.Errorf("strtree: layer %q already exists", name)
	}
	maxLayers := (ls.opts.PageSize - layerHdrSize) / layerEntSize
	if len(ls.catalog) >= maxLayers {
		return nil, fmt.Errorf("strtree: layer catalog full (%d layers)", maxLayers)
	}
	inner, err := rtree.CreateAt(ls.pool, rtree.Config{
		Dims:           ls.opts.Dims,
		Capacity:       ls.opts.Capacity,
		MinFill:        ls.opts.MinFill,
		Split:          ls.opts.Split,
		ForcedReinsert: ls.opts.ForcedReinsert,
	})
	if err != nil {
		return nil, err
	}
	ls.catalog[name] = inner.MetaPage()
	if err := ls.writeCatalog(); err != nil {
		delete(ls.catalog, name)
		return nil, err
	}
	t := &Tree{inner: inner, pool: ls.pool, pager: ls.pager, shared: true}
	ls.opened[name] = t
	return t, nil
}

// Open returns the named layer's tree, creating the handle on first use.
func (ls *LayerSet) Open(name string) (*Tree, error) {
	if t, ok := ls.opened[name]; ok {
		return t, nil
	}
	meta, ok := ls.catalog[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoLayer, name)
	}
	inner, err := rtree.OpenAt(ls.pool, meta)
	if err != nil {
		return nil, err
	}
	t := &Tree{inner: inner, pool: ls.pool, pager: ls.pager, shared: true}
	ls.opened[name] = t
	return t, nil
}

// Flush writes every opened layer's state and then the catalog to
// storage. Layers flush in sorted name order: ls.opened is a map, and
// ranging it directly would leak map iteration order into the sequence of
// per-layer metadata writes, making the write stream differ from run to
// run for no reason. Sorting pins each layer's flush — and the catalog
// write, always last — to a deterministic position.
func (ls *LayerSet) Flush() error {
	names := make([]string, 0, len(ls.opened))
	for name := range ls.opened {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		if err := ls.opened[name].Flush(); err != nil {
			return err
		}
	}
	if err := ls.writeCatalog(); err != nil {
		return err
	}
	return ls.pool.FlushAll()
}

// Close flushes and releases the underlying storage; all layer handles
// become unusable.
func (ls *LayerSet) Close() error {
	flushErr := ls.Flush()
	syncErr := ls.pager.Sync()
	closeErr := ls.pager.Close()
	return errors.Join(flushErr, syncErr, closeErr)
}

// Stats returns the shared pool's counters (all layers count together).
func (ls *LayerSet) Stats() IOStats {
	s := ls.pool.Stats()
	return IOStats{
		LogicalReads: s.LogicalReads,
		DiskReads:    s.DiskReads,
		DiskWrites:   s.DiskWrites,
		Evictions:    s.Evictions,
	}
}

// ResetStats zeroes the shared counters.
func (ls *LayerSet) ResetStats() { ls.pool.ResetStats() }
