#!/bin/sh
# scripts/coverage.sh — the coverage ratchet gate (CI's coverage job).
#
# Runs the full test suite with statement coverage and fails if the total
# drops below the committed floor in COVERAGE_BASELINE. The floor is a
# ratchet, not a target: it sits a little below the real number so
# incidental churn (moved files, refactors) doesn't flake, but a change
# that lands a meaningful amount of untested code fails loudly.
#
# To move the ratchet after coverage genuinely improves:
#
#   ./scripts/coverage.sh            # prints the current total
#   echo "<new floor>" > COVERAGE_BASELINE
#
# and commit COVERAGE_BASELINE with the change that earned it. Keep the
# floor ~1-2 points below the measured total.
set -eu
cd "$(dirname "$0")/.."

baseline=$(cat COVERAGE_BASELINE)

go test -count=1 -coverprofile=coverage.out ./...
total=$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')

echo "coverage: total ${total}% (committed floor ${baseline}%)"

if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t+0 < b+0) }'; then
    cat >&2 <<EOF

coverage gate FAILED: total statement coverage ${total}% is below the
committed floor of ${baseline}% (COVERAGE_BASELINE).

Either add tests for the new code, or — if the drop is justified (e.g.
a large amount of intentionally untestable glue landed) — lower the
floor explicitly:

    echo "<new floor>" > COVERAGE_BASELINE

and explain why in the commit message. Inspect what is uncovered with:

    go tool cover -html=coverage.out
EOF
    exit 1
fi
