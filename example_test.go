package strtree_test

import (
	"fmt"
	"log"

	"strtree"
)

// ExampleTree_BulkLoad builds a packed tree and runs an intersection
// query — the library's primary workflow.
func ExampleTree_BulkLoad() {
	tree, err := strtree.New(strtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	items := []strtree.Item{
		{Rect: strtree.R2(0.0, 0.0, 0.1, 0.1), ID: 1},
		{Rect: strtree.R2(0.2, 0.2, 0.4, 0.4), ID: 2},
		{Rect: strtree.R2(0.8, 0.8, 0.9, 0.9), ID: 3},
	}
	if err := tree.BulkLoad(items, strtree.PackSTR); err != nil {
		log.Fatal(err)
	}
	if err := tree.Search(strtree.R2(0.05, 0.05, 0.3, 0.3), func(it strtree.Item) bool {
		fmt.Println("hit:", it.ID)
		return true
	}); err != nil {
		log.Fatal(err)
	}
	// Output:
	// hit: 1
	// hit: 2
}

// ExampleTree_NearestK finds the two nearest rectangles to a point.
func ExampleTree_NearestK() {
	tree, err := strtree.New(strtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range []strtree.Rect{
		strtree.R2(0.0, 0.0, 0.1, 0.1),
		strtree.R2(0.5, 0.5, 0.6, 0.6),
		strtree.R2(0.9, 0.9, 1.0, 1.0),
	} {
		if err := tree.Insert(r, uint64(i+1)); err != nil {
			log.Fatal(err)
		}
	}
	items, dists, err := tree.NearestK(strtree.Pt2(0.55, 0.55), 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, it := range items {
		fmt.Printf("id=%d dist=%.2f\n", it.ID, dists[i])
	}
	// Output:
	// id=2 dist=0.00
	// id=3 dist=0.49
}

// ExampleJoin intersects two layers, the classical spatial-join workload.
func ExampleJoin() {
	build := func(rects []strtree.Rect) *strtree.Tree {
		tree, err := strtree.New(strtree.Options{})
		if err != nil {
			log.Fatal(err)
		}
		items := make([]strtree.Item, len(rects))
		for i, r := range rects {
			items[i] = strtree.Item{Rect: r, ID: uint64(i + 1)}
		}
		if err := tree.BulkLoad(items, strtree.PackSTR); err != nil {
			log.Fatal(err)
		}
		return tree
	}
	parcels := build([]strtree.Rect{
		strtree.R2(0.0, 0.0, 0.5, 0.5),
		strtree.R2(0.6, 0.6, 0.9, 0.9),
	})
	floods := build([]strtree.Rect{
		strtree.R2(0.4, 0.4, 0.7, 0.7),
	})
	if err := strtree.Join(parcels, floods, func(p, f strtree.Item) bool {
		fmt.Printf("parcel %d intersects flood zone %d\n", p.ID, f.ID)
		return true
	}); err != nil {
		log.Fatal(err)
	}
	// Output:
	// parcel 1 intersects flood zone 1
	// parcel 2 intersects flood zone 1
}

// ExampleTree_SearchWithin contrasts containment with intersection
// semantics.
func ExampleTree_SearchWithin() {
	tree, err := strtree.New(strtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	_ = tree.Insert(strtree.R2(0.1, 0.1, 0.2, 0.2), 1) // inside the window
	_ = tree.Insert(strtree.R2(0.3, 0.3, 0.7, 0.7), 2) // straddles its edge
	w := strtree.R2(0, 0, 0.5, 0.5)
	n, _ := tree.Count(w)
	fmt.Println("intersecting:", n)
	if err := tree.SearchWithin(w, func(it strtree.Item) bool {
		fmt.Println("contained:", it.ID)
		return true
	}); err != nil {
		log.Fatal(err)
	}
	// Output:
	// intersecting: 2
	// contained: 1
}

// ExampleJoinWithin finds pairs within a distance threshold.
func ExampleJoinWithin() {
	hydrants, _ := strtree.New(strtree.Options{})
	buildings, _ := strtree.New(strtree.Options{})
	_ = hydrants.Insert(strtree.PointRect(strtree.Pt2(0.10, 0.10)), 1)
	_ = hydrants.Insert(strtree.PointRect(strtree.Pt2(0.90, 0.90)), 2)
	_ = buildings.Insert(strtree.R2(0.15, 0.10, 0.20, 0.15), 7)
	if err := strtree.JoinWithin(hydrants, buildings, 0.06, func(h, b strtree.Item) bool {
		fmt.Printf("hydrant %d serves building %d\n", h.ID, b.ID)
		return true
	}); err != nil {
		log.Fatal(err)
	}
	// Output:
	// hydrant 1 serves building 7
}

// ExampleLayerSet stores two named indexes in one store and joins them.
func ExampleLayerSet() {
	ls, err := strtree.NewLayers(strtree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	parcels, _ := ls.Create("parcels")
	floods, _ := ls.Create("floods")
	_ = parcels.Insert(strtree.R2(0.1, 0.1, 0.3, 0.3), 100)
	_ = parcels.Insert(strtree.R2(0.6, 0.6, 0.8, 0.8), 200)
	_ = floods.Insert(strtree.R2(0.2, 0.2, 0.7, 0.7), 1)
	fmt.Println("layers:", ls.Names())
	if err := strtree.Join(parcels, floods, func(p, f strtree.Item) bool {
		fmt.Println("parcel in flood zone:", p.ID)
		return true
	}); err != nil {
		log.Fatal(err)
	}
	// Output:
	// layers: [floods parcels]
	// parcel in flood zone: 100
	// parcel in flood zone: 200
}

// ExampleTree_Stats shows the paper's disk-access metric for one query.
func ExampleTree_Stats() {
	tree, err := strtree.New(strtree.Options{Capacity: 4, BufferPages: 8})
	if err != nil {
		log.Fatal(err)
	}
	var items []strtree.Item
	for i := 0; i < 64; i++ {
		x := float64(i%8) / 8
		y := float64(i/8) / 8
		items = append(items, strtree.Item{Rect: strtree.R2(x, y, x+0.05, y+0.05), ID: uint64(i)})
	}
	if err := tree.BulkLoad(items, strtree.PackSTR); err != nil {
		log.Fatal(err)
	}
	if err := tree.DropCaches(); err != nil {
		log.Fatal(err)
	}
	tree.ResetStats()
	if _, err := tree.Count(strtree.R2(0.01, 0.01, 0.02, 0.02)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("disk accesses:", tree.Stats().DiskReads)
	// Output:
	// disk accesses: 3
}
