// Package strtree is a paged R-tree library built around the
// Sort-Tile-Recursive (STR) bulk-loading algorithm of Leutenegger,
// Edgington and Lopez ("STR: A Simple and Efficient Algorithm for R-Tree
// Packing", ICDE 1997), together with the two packing algorithms the paper
// compares against (Hilbert Sort and Nearest-X) and Guttman's dynamic
// insertion and deletion.
//
// Trees store one node per fixed-size page, either in memory or in a file,
// behind an LRU buffer pool whose miss counter reproduces the paper's
// "disk accesses" metric. A typical use:
//
//	tree, err := strtree.New(strtree.Options{})
//	...
//	items := []strtree.Item{{Rect: strtree.R2(0, 0, 1, 1), ID: 1}, ...}
//	err = tree.BulkLoad(items, strtree.PackSTR)
//	err = tree.Search(strtree.R2(0.2, 0.2, 0.4, 0.4), func(it strtree.Item) bool {
//		fmt.Println(it.ID)
//		return true // keep going
//	})
package strtree

import (
	"errors"
	"fmt"
	"runtime"

	"strtree/internal/buffer"
	"strtree/internal/geom"
	"strtree/internal/invariant"
	"strtree/internal/metrics"
	"strtree/internal/node"
	"strtree/internal/pack"
	"strtree/internal/query"
	"strtree/internal/rtree"
	"strtree/internal/storage"
)

// Rect is an axis-aligned k-dimensional rectangle (see R2, NewRect,
// PointRect for constructors).
type Rect = geom.Rect

// Point is a location in k-dimensional space.
type Point = geom.Point

// Constructors re-exported from the geometry layer.
var (
	// NewRect builds a rectangle from two corners, reordering coordinates.
	NewRect = geom.NewRect
	// PointRect returns the degenerate rectangle holding exactly one point.
	PointRect = geom.PointRect
	// MBR returns the minimum bounding rectangle of a non-empty set.
	MBR = geom.MBR
)

// R2 returns the 2-D rectangle [x0,x1] x [y0,y1].
func R2(x0, y0, x1, y1 float64) Rect { return geom.R2(x0, y0, x1, y1) }

// Pt2 returns a 2-D point.
func Pt2(x, y float64) Point { return geom.Pt2(x, y) }

// Item is one indexed object: its bounding rectangle and an opaque
// identifier the caller uses to locate the actual object.
type Item struct {
	Rect Rect
	ID   uint64
}

// Packing selects the bulk-loading algorithm.
type Packing int

const (
	// PackSTR is Sort-Tile-Recursive, the paper's algorithm: the best
	// default; the paper finds it strongest on uniform and mildly skewed
	// data and competitive elsewhere.
	PackSTR Packing = iota
	// PackHilbert is the Hilbert-Sort packing of Kamel and Faloutsos.
	PackHilbert
	// PackNearestX is the Nearest-X packing of Roussopoulos and Leifker.
	// It is simple but uncompetitive for region queries; provided for
	// completeness and comparison.
	PackNearestX
	// PackSTRSerpentine is STR with alternating slice direction, a
	// locality refinement measured in this repository's ablations.
	PackSTRSerpentine
	// PackTGS is the Top-down Greedy Split loader of García, López and
	// Leutenegger (CIKM 1998), the follow-up to the STR paper. It often
	// wins on highly skewed point data at some cost on region queries.
	PackTGS
)

// String returns the packing's name as used in the paper.
func (p Packing) String() string {
	switch p {
	case PackSTR:
		return "STR"
	case PackHilbert:
		return "HS"
	case PackNearestX:
		return "NX"
	case PackSTRSerpentine:
		return "STR-serp"
	case PackTGS:
		return "TGS"
	default:
		return fmt.Sprintf("Packing(%d)", int(p))
	}
}

func (p Packing) orderer(workers int) (rtree.Orderer, error) {
	switch p {
	case PackSTR:
		return pack.STR{Workers: workers}, nil
	case PackHilbert:
		return pack.HS{Workers: workers}, nil
	case PackNearestX:
		return pack.NX{Workers: workers}, nil
	case PackSTRSerpentine:
		return pack.Serpentine{Workers: workers}, nil
	case PackTGS:
		return pack.TGS{Workers: workers}, nil
	default:
		return nil, fmt.Errorf("strtree: unknown packing %d", int(p))
	}
}

// SplitAlgorithm selects the node-split heuristic for dynamic inserts.
type SplitAlgorithm = rtree.SplitAlgorithm

// Split heuristics for dynamic insertion.
const (
	// SplitLinear is Guttman's linear-cost split.
	SplitLinear = rtree.SplitLinear
	// SplitQuadratic is Guttman's quadratic-cost split.
	SplitQuadratic = rtree.SplitQuadratic
	// SplitRStar is the R*-tree topological split of Beckmann et al.,
	// the strongest of the three for dynamic loads.
	SplitRStar = rtree.SplitRStar
)

// Options configures a tree. The zero value gives a 2-dimensional
// in-memory tree with 4 KiB pages, node fan-out filling the page (102
// entries), a 256-page LRU buffer and quadratic splits.
type Options struct {
	// Dims is the dimensionality; 0 means 2.
	Dims int
	// PageSize in bytes; 0 means 4096. One tree node occupies one page.
	PageSize int
	// BufferPages is the LRU pool capacity in pages; 0 means 256.
	BufferPages int
	// BufferShards splits the LRU buffer into this power-of-two number of
	// independently locked shards so concurrent queries (SearchBatch,
	// Views, goroutines sharing the tree) stop serializing behind one
	// buffer mutex. 0 or 1 keeps the single deterministic LRU whose miss
	// counts reproduce the paper's tables; sharding changes eviction
	// locality, so access counts under memory pressure can differ
	// slightly. BufferPages must be at least BufferShards, and each
	// shard's slice of the buffer must cover the worst-case concurrently
	// pinned pages (one per querying goroutine).
	BufferShards int
	// Capacity caps entries per node (the paper's n); 0 fills the page.
	Capacity int
	// MinFill is the minimum entries per non-root node maintained by
	// deletes; 0 means 40% of Capacity.
	MinFill int
	// Split selects the dynamic-insert split heuristic.
	Split SplitAlgorithm
	// ForcedReinsert enables R*-style forced reinsertion on overflow,
	// improving dynamic-load tree quality at some insert cost.
	ForcedReinsert bool
	// Workers bounds the goroutines a bulk load may use: the packing
	// algorithms' parallel sorts plus the builder's write-behind page
	// emission. 0 means GOMAXPROCS; 1 forces a fully sequential build.
	// The packed tree is byte-for-byte identical for every setting — the
	// sort kernel's index tie-break makes the ordering worker-count
	// independent — so this knob trades only wall time, never layout.
	Workers int
}

// resolveWorkers maps the Options.Workers convention (0 = GOMAXPROCS) to
// an explicit goroutine bound.
func resolveWorkers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	return w
}

func (o Options) withDefaults() Options {
	if o.Dims == 0 {
		o.Dims = 2
	}
	if o.PageSize == 0 {
		o.PageSize = storage.DefaultPageSize
	}
	if o.BufferPages == 0 {
		o.BufferPages = 256
	}
	return o
}

// IOStats are the buffer pool's counters. DiskReads is the paper's
// disk-access metric: page requests the buffer could not serve.
type IOStats struct {
	LogicalReads int64
	DiskReads    int64
	DiskWrites   int64
	Evictions    int64
}

// Metrics are the paper's secondary comparison metric: summed area and
// perimeter of node MBRs, for leaves and for the whole tree.
type Metrics struct {
	LeafArea, LeafPerimeter   float64
	TotalArea, TotalPerimeter float64
	Nodes, LeafNodes          int
}

// Tree is a paged R-tree. Mutations (Insert, Delete, BulkLoad) are safe
// from one goroutine only; wrap the tree with NewSafe for mixed
// read/write sharing. Read-only access is safe from many goroutines at
// once while no mutation runs — Search and friends touch only immutable
// tree state and the buffer, whose pin protocol keeps every fetched page
// stable until released. For parallel read throughput set
// Options.BufferShards and use SearchBatch, or give each goroutine its
// own View.
type Tree struct {
	inner    *rtree.Tree
	pool     buffer.Manager
	pager    storage.Pager
	readonly bool
	// shared trees (views, layers) do not own the pager; Close releases
	// only their own state.
	shared bool
	// batchMetrics aggregates batch-executor activity across every
	// SearchBatch/SearchBatchCount on this handle, for BatchExecStats.
	batchMetrics query.ExecMetrics
	// extSortStats holds the external sorter's counters from the most
	// recent BulkLoadExternal, for LastExternalSortStats.
	extSortStats pack.SortStats
}

// ErrReadOnly is returned by mutations on a read-only View.
var ErrReadOnly = errors.New("strtree: tree view is read-only")

// New creates an empty in-memory tree.
func New(opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	return create(storage.NewMemPager(opts.PageSize), opts)
}

// Create creates an empty tree stored in a new file at path (truncating
// any existing file).
func Create(path string, opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	pg, err := storage.CreateFilePager(path, opts.PageSize)
	if err != nil {
		return nil, err
	}
	t, err := create(pg, opts)
	if err != nil {
		return nil, errors.Join(err, pg.Close())
	}
	return t, nil
}

// newBuffer builds the tree's buffer manager per opts: a single
// deterministic LRU by default, a sharded one when BufferShards > 1.
func newBuffer(pg storage.Pager, opts Options) (buffer.Manager, error) {
	if opts.BufferShards > 1 {
		return buffer.NewSharded(pg, opts.BufferPages, opts.BufferShards)
	}
	return buffer.NewPool(pg, opts.BufferPages), nil
}

func create(pg storage.Pager, opts Options) (*Tree, error) {
	pool, err := newBuffer(pg, opts)
	if err != nil {
		return nil, err
	}
	inner, err := rtree.Create(pool, rtree.Config{
		Dims:           opts.Dims,
		Capacity:       opts.Capacity,
		MinFill:        opts.MinFill,
		Split:          opts.Split,
		ForcedReinsert: opts.ForcedReinsert,
		Workers:        resolveWorkers(opts.Workers),
	})
	if err != nil {
		return nil, err
	}
	return &Tree{inner: inner, pool: pool, pager: pg}, nil
}

// Open opens a tree previously written with Create. Only PageSize,
// BufferPages, BufferShards and Workers from opts are used; structural
// parameters come from the file.
func Open(path string, opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	pg, err := storage.OpenFilePager(path, opts.PageSize)
	if err != nil {
		return nil, err
	}
	pool, err := newBuffer(pg, opts)
	if err != nil {
		return nil, errors.Join(err, pg.Close())
	}
	inner, err := rtree.Open(pool)
	if err != nil {
		return nil, errors.Join(err, pg.Close())
	}
	inner.SetWorkers(resolveWorkers(opts.Workers))
	return &Tree{inner: inner, pool: pool, pager: pg}, nil
}

// BulkLoad builds the tree bottom-up from items using the chosen packing
// algorithm. The tree must be empty; packed nodes are filled to capacity,
// giving near-100% space utilization. This is the paper's preprocessing
// path and produces far better trees than repeated Insert.
func (t *Tree) BulkLoad(items []Item, p Packing) error {
	if t.readonly {
		return ErrReadOnly
	}
	o, err := p.orderer(t.inner.Workers())
	if err != nil {
		return err
	}
	entries := make([]node.Entry, len(items))
	for i, it := range items {
		entries[i] = node.Entry{Rect: it.Rect, Ref: it.ID}
	}
	return t.inner.BulkLoad(entries, o)
}

// Insert adds one item dynamically (Guttman's algorithm).
func (t *Tree) Insert(r Rect, id uint64) error {
	if t.readonly {
		return ErrReadOnly
	}
	return t.inner.Insert(r, id)
}

// Delete removes the item with exactly this rectangle and id, reporting
// whether it was found.
func (t *Tree) Delete(r Rect, id uint64) (bool, error) {
	if t.readonly {
		return false, ErrReadOnly
	}
	return t.inner.Delete(r, id)
}

// Search streams every item whose rectangle intersects q. Returning false
// from fn stops early.
func (t *Tree) Search(q Rect, fn func(Item) bool) error {
	return t.inner.Search(q, func(e node.Entry) bool {
		return fn(Item{Rect: e.Rect, ID: e.Ref})
	})
}

// SearchPoint streams every item whose rectangle contains p.
func (t *Tree) SearchPoint(p Point, fn func(Item) bool) error {
	return t.Search(geom.PointRect(p), fn)
}

// batchExecutor builds the worker pool for one batch call.
func (t *Tree) batchExecutor(workers int) *query.BatchExecutor {
	return &query.BatchExecutor{
		Workers: workers,
		Search:  t.inner.Search,
		Metrics: &t.batchMetrics,
	}
}

// SearchBatch executes qs concurrently across a pool of workers sharing
// this tree's buffer and returns each query's matches in input order.
// workers < 1 means GOMAXPROCS; workers == 1 runs sequentially with the
// deterministic buffer accounting of a plain Search loop. The batch is
// safe while no goroutine mutates the tree; for parallel speed-up open
// the tree with Options.BufferShards > 1, otherwise workers serialize on
// the single buffer mutex. The first page-read error aborts the batch and
// is returned. Merged access statistics accumulate in Stats, aggregated
// across all workers and buffer shards.
func (t *Tree) SearchBatch(qs []Rect, workers int) ([][]Item, error) {
	res, err := t.batchExecutor(workers).Run(qs)
	if err != nil {
		return nil, err
	}
	out := make([][]Item, len(res))
	for i, entries := range res {
		if entries == nil {
			continue
		}
		items := make([]Item, len(entries))
		for j, e := range entries {
			items[j] = Item{Rect: e.Rect, ID: e.Ref}
		}
		out[i] = items
	}
	return out, nil
}

// SearchBatchCount is SearchBatch without materializing matches: it
// returns each query's intersection count in input order. This is the
// shape the paper's access-count experiments (and cmd/strbench
// -concurrency) use.
func (t *Tree) SearchBatchCount(qs []Rect, workers int) ([]int, error) {
	return t.batchExecutor(workers).RunCount(qs)
}

// Count returns the number of items intersecting q.
func (t *Tree) Count(q Rect) (int, error) { return t.inner.Count(q) }

// All collects every item intersecting q.
func (t *Tree) All(q Rect) ([]Item, error) {
	var out []Item
	err := t.Search(q, func(it Item) bool {
		it.Rect = it.Rect.Clone()
		out = append(out, it)
		return true
	})
	return out, err
}

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return t.inner.Len() }

// Height returns the number of tree levels (0 when empty).
func (t *Tree) Height() int { return t.inner.Height() }

// Dims returns the tree's dimensionality.
func (t *Tree) Dims() int { return t.inner.Dims() }

// Capacity returns the node fan-out.
func (t *Tree) Capacity() int { return t.inner.Capacity() }

// Stats returns the I/O counters since the last ResetStats.
func (t *Tree) Stats() IOStats {
	s := t.pool.Stats()
	return IOStats{
		LogicalReads: s.LogicalReads,
		DiskReads:    s.DiskReads,
		DiskWrites:   s.DiskWrites,
		Evictions:    s.Evictions,
	}
}

// ResetStats zeroes the I/O counters, typically after a build so queries
// are measured alone.
func (t *Tree) ResetStats() { t.pool.ResetStats() }

// ShardIOStats is one buffer shard's counters: the IOStats accumulators
// plus Pinned, a gauge of frames pinned at the moment of the snapshot.
// Persistent imbalance across shards means the page-number hash is
// concentrating hot pages, and a Pinned count near a shard's share of the
// buffer means queries risk stalling on frame eviction.
type ShardIOStats struct {
	IOStats
	Pinned int64
}

// ShardStats returns per-shard buffer counters — one element per shard
// for a tree opened with Options.BufferShards > 1, a single element for
// the default unsharded buffer. The snapshot is taken shard by shard, so
// concurrent queries may move counters between elements mid-read; totals
// remain consistent with Stats to within in-flight fetches.
func (t *Tree) ShardStats() []ShardIOStats {
	var per []buffer.Stats
	if s, ok := t.pool.(*buffer.Sharded); ok {
		per = s.ShardStats()
	} else {
		per = []buffer.Stats{t.pool.Stats()}
	}
	out := make([]ShardIOStats, len(per))
	for i, s := range per {
		out[i] = ShardIOStats{
			IOStats: IOStats{
				LogicalReads: s.LogicalReads,
				DiskReads:    s.DiskReads,
				DiskWrites:   s.DiskWrites,
				Evictions:    s.Evictions,
			},
			Pinned: s.Pinned,
		}
	}
	return out
}

// BatchExecStats is the cumulative batch-query activity of one tree
// handle: batches and queries completed, plus two point-in-time gauges —
// queries admitted but not yet claimed by a worker, and workers currently
// executing.
type BatchExecStats struct {
	BatchesStarted, BatchesDone, QueriesDone uint64
	QueuedQueries, ActiveWorkers             int64
}

// BatchExecStats snapshots the counters accumulated by every SearchBatch
// and SearchBatchCount on this handle (views keep their own).
func (t *Tree) BatchExecStats() BatchExecStats {
	s := t.batchMetrics.Stats()
	return BatchExecStats{
		BatchesStarted: s.BatchesStarted,
		BatchesDone:    s.BatchesDone,
		QueriesDone:    s.QueriesDone,
		QueuedQueries:  s.QueuedQueries,
		ActiveWorkers:  s.ActiveWorkers,
	}
}

// ReadPathStats counts zero-copy read-path activity: queries run,
// pages decoded through lazy views, and traverser-pool misses; see
// Tree.ReadPathStats.
type ReadPathStats = rtree.ReadStats

// ReadPathStats snapshots the zero-copy read path's counters for this
// tree: Queries (view-path traversals started), ViewPages (pages decoded
// in place, one per node visit), and TraverserAllocs (traversal-state
// pool misses — flat under steady load once warm; growth means queries
// are allocating). The serving layer exposes these on /metrics.
func (t *Tree) ReadPathStats() ReadPathStats { return t.inner.ReadStats() }

// MutatePathStats counts how dynamic mutations executed: InPlaceInserts
// and InPlaceDeletes patched the affected pages directly through mutable
// views (no decode/re-encode), while the Structural counters took the
// full Guttman path because the op split a node, condensed one, or
// collapsed the root; see Tree.MutatePathStats.
type MutatePathStats = rtree.MutateStats

// MutatePathStats snapshots the write path's counters for this tree.
// Both paths produce byte-identical trees; the split tells how often the
// cheap in-place case applied under a given workload.
func (t *Tree) MutatePathStats() MutatePathStats { return t.inner.MutateStats() }

// BuildStats is the phase breakdown of a bulk load; see LastBuildStats.
type BuildStats = rtree.BuildStats

// LastBuildStats returns where the most recent BulkLoad or
// BulkLoadExternal on this tree spent its time (zero if none ran): wall
// time inside the packing sort, cumulative page-write time (overlapping
// the sort when Workers > 1), pages written, and the write-behind
// queue's high-water mark.
func (t *Tree) LastBuildStats() BuildStats { return t.inner.LastBuildStats() }

// ExternalSortStats reports the external sorter's activity during a
// BulkLoadExternal; see LastExternalSortStats.
type ExternalSortStats = pack.SortStats

// LastExternalSortStats returns the external-merge-sort counters from the
// most recent successful BulkLoadExternal on this tree (zero if none
// ran): sorts performed, entries ingested, runs spilled to temp files and
// k-way merges. RunsSpilled == 0 means every phase fit in RunSize.
func (t *Tree) LastExternalSortStats() ExternalSortStats { return t.extSortStats }

// DropCaches writes back dirty pages and empties the buffer pool, so the
// next queries run cold.
func (t *Tree) DropCaches() error { return t.pool.Invalidate() }

// Metrics measures the paper's area/perimeter statistics. It walks the
// whole tree (and therefore perturbs Stats).
func (t *Tree) Metrics() (Metrics, error) {
	m, err := metrics.Measure(t.inner)
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{
		LeafArea: m.LeafArea, LeafPerimeter: m.LeafMargin,
		TotalArea: m.TotalArea, TotalPerimeter: m.TotalMargin,
		Nodes: m.Nodes, LeafNodes: m.LeafNodes,
	}, nil
}

// Validate checks the tree's structural invariants (balance, tight MBRs,
// fill bounds, no page shared between subtrees).
func (t *Tree) Validate() error { return t.inner.Validate() }

// CheckInvariants runs the full structural verifier over every page of the
// tree: height balance, exact MBR tightness at every internal entry, fill
// bounds, entry-count accounting, and a byte-for-byte page serialization
// round-trip. It holds for any consistent tree, packed or dynamically
// built, and returns a descriptive error naming the first violated
// invariant and the offending page. The walk reads the whole tree, so it
// perturbs Stats.
func (t *Tree) CheckInvariants() error {
	return invariant.Check(t.inner, invariant.Config{RoundTrip: true})
}

// CheckPackedInvariants runs CheckInvariants plus the STR packing fill
// factor from the paper's Section 3: every node except the last of each
// level holds exactly Capacity entries, i.e. each level uses the minimum
// ceil(entries/capacity) nodes. It holds for freshly bulk-loaded trees;
// trees later mutated by Insert or Delete keep the universal invariants
// but generally lose this one.
func (t *Tree) CheckPackedInvariants() error {
	return invariant.Check(t.inner, invariant.Config{Packed: true, RoundTrip: true})
}

// Flush writes all buffered dirty pages and metadata through to storage.
// On a read-only View it is a no-op.
func (t *Tree) Flush() error {
	if t.readonly {
		return nil
	}
	return t.inner.Flush()
}

// Close flushes and releases the underlying storage. The tree is unusable
// afterwards. Closing a View releases only the view's buffer pool and
// leaves the shared storage open.
func (t *Tree) Close() error {
	if t.readonly {
		return t.pool.Invalidate()
	}
	if t.shared {
		// A layer: flush through the shared pool but leave it open for
		// the other layers.
		return t.Flush()
	}
	flushErr := t.Flush()
	syncErr := t.pager.Sync()
	closeErr := t.pager.Close()
	return errors.Join(flushErr, syncErr, closeErr)
}

// View returns an independent read-only handle over the same storage with
// its own buffer pool of bufferPages (0 means 256) and its own Stats.
// Views make concurrent querying safe: each goroutine queries through its
// own view while no goroutine mutates the tree. The view observes the
// tree as of this call; Flush is performed here so the storage is
// current. Mutating methods on a view return ErrReadOnly.
func (t *Tree) View(bufferPages int) (*Tree, error) {
	if bufferPages == 0 {
		bufferPages = 256
	}
	if err := t.Flush(); err != nil {
		return nil, err
	}
	pool := buffer.NewPool(t.pager, bufferPages)
	inner, err := rtree.Open(pool)
	if err != nil {
		return nil, err
	}
	return &Tree{inner: inner, pool: pool, pager: t.pager, readonly: true}, nil
}
